//! The LOOPRAG pipeline (§3): dataset-backed retrieval plus the
//! four-step feedback-based iterative generation of §4.3, structured as
//! explicit stages over the deterministic worker pool of
//! [`looprag_runtime`].
//!
//! * **Step 1** — prompt with retrieved demonstrations, generate K
//!   candidates, compile each.
//! * **Step 2** — regenerate compile failures with the compiler
//!   diagnostics (first round of compilation feedback), then run
//!   mutation/coverage/differential testing and rank the survivors by
//!   estimated performance.
//! * **Step 3** — prompt with testing results and performance rankings,
//!   generate a fresh batch.
//! * **Step 4** — repeat compile-repair and testing for the new batch,
//!   and output the fastest passing candidate overall.
//!
//! # Stage structure and parallelism
//!
//! Each round flows through three explicit stage values:
//! [`GeneratedBatch`] (the model's vetted emissions) →
//! [`CompiledBatch`] (per-candidate reports + programs) →
//! [`TestedBatch`] (verdicts and speedups), followed by a pure ranking.
//! Generation and repair stay **sequential** — the simulated LLM is a
//! stateful RNG stream, so call order is part of the seed contract, and
//! it must parse every emission anyway to decide whether to send repair
//! feedback (the parse is carried forward, not redone) — while
//! differential testing and cost estimation (the dominant cost) fan out
//! across the worker pool. Results merge back in submission order and
//! every budget decision is taken sequentially before the fan-out, so
//! outcomes are bit-for-bit identical at any thread count.

use crate::metrics::candidate_speedup;
use looprag_eqcheck::{PreparedTarget, TestVerdict};
use looprag_ir::{compile, print_program, Program};
use looprag_llm::{Demonstration, LanguageModel, LlmProfile, Prompt, SimLlm};
use looprag_machine::{estimate_cost, CostReport, MachineConfig};
use looprag_retrieval::{KnowledgeBase, RetrievalMode};
use looprag_runtime::{par_map, resolve_threads, Budget, BudgetPolicy};
use looprag_search::SearchConfig;
use looprag_synth::{property_stats, Dataset, ExampleRecord, Provenance};
use looprag_trace::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Virtual-cost units charged per model call (generation or repair).
const GEN_COST: u64 = 1;
/// Virtual-cost units charged per candidate differential test.
const TEST_COST: u64 = 1;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct LoopRagConfig {
    /// Base seed; per-target seeds derive from it and the kernel name.
    pub seed: u64,
    /// Number of candidates per generation round (the paper's K).
    pub k: usize,
    /// Retrieval arm (the Table 6 ablation).
    pub retrieval: RetrievalMode,
    /// Candidates retrieved before sampling (the paper's N).
    pub top_n: usize,
    /// Demonstrations sampled from the top-N (the paper uses 3).
    pub demos: usize,
    /// Base-LLM profile.
    pub profile: LlmProfile,
    /// Machine model for performance ranking and reported speedups.
    pub machine: MachineConfig,
    /// Equivalence-checking configuration.
    pub eqcheck: looprag_eqcheck::EqCheckConfig,
    /// Candidates whose estimated cost exceeds `orig_cost * slow_factor`
    /// count as inefficient failures (the paper's 120 s wall limit).
    pub slow_factor: f64,
    /// When true, run only step 1 with no feedback of any kind — the
    /// base-LLM prompting arm of Table 2.
    pub single_shot: bool,
    /// Per-kernel execution budget. The default is a virtual-cost limit
    /// (every model call and candidate test charges one unit), which
    /// mirrors the paper's per-kernel generation time limits while
    /// keeping outcomes reproducible regardless of machine load or
    /// thread count; a wall-clock policy is available for deployments
    /// that want the literal limit.
    pub budget: BudgetPolicy,
    /// Worker-pool size for the parallel stages. 0 = auto: the
    /// `LOOPRAG_THREADS` environment variable, falling back to the
    /// machine's available parallelism.
    pub threads: usize,
    /// Feedback indexing: when true, [`LoopRag::ingest_outcome`] mines
    /// each kernel's verified winning candidate back into the knowledge
    /// base as an original → optimized demonstration, so campaigns
    /// self-improve (see `looprag_bench`'s feedback campaign driver).
    /// Off by default, which keeps fixed-seed outcomes bit-identical to
    /// a fixed-corpus run.
    pub feedback: bool,
    /// Hybrid LLM+search mode: when set, the legality-guided beam
    /// search of `looprag_search` runs on the target and its winner
    /// joins the step-1 candidate batch *before* differential testing,
    /// competing with the LLM's candidates on equal terms (and, under
    /// [`LoopRagConfig::feedback`], being mined into the knowledge base
    /// when it wins). The fixed-seed LLM stream is untouched, so with
    /// the default `None` every outcome is byte-identical to a
    /// search-free run. With `k = 0` this becomes the search-only
    /// scenario arm: no model calls, only the search winner is tested.
    pub search: Option<SearchConfig>,
    /// Learned reranker for the hybrid search arm: when set, the beam
    /// search injected by [`LoopRagConfig::search`] scores, reorders
    /// and prunes each node's step grid with this model before paying
    /// for legality checks and cost estimates (see `looprag_rank`).
    /// Ignored when `search` is `None`. The default `None` keeps every
    /// fixed-seed outcome byte-identical to a ranker-free build.
    pub rank: Option<looprag_rank::RankConfig>,
}

impl LoopRagConfig {
    /// Default configuration over a given profile.
    pub fn new(profile: LlmProfile) -> Self {
        LoopRagConfig {
            seed: 0x100B_4A6D,
            k: 7,
            retrieval: RetrievalMode::LoopAware,
            top_n: 10,
            demos: 3,
            profile,
            machine: MachineConfig::gcc(),
            eqcheck: looprag_eqcheck::EqCheckConfig::default(),
            slow_factor: 50.0,
            single_shot: false,
            budget: BudgetPolicy::default_virtual(),
            threads: 0,
            feedback: false,
            search: None,
            rank: None,
        }
    }

    /// A canonical fingerprint of every outcome-relevant field — the
    /// "arm/config" component of the serve layer's verified-winner memo
    /// key. Two configs with equal fingerprints produce bit-identical
    /// outcomes for the same kernel over the same knowledge-base state.
    ///
    /// The pool size is deliberately **excluded**: outcomes are
    /// bit-identical at any `threads` (and any
    /// [`SearchConfig::threads`]), so a memo entry computed at one pool
    /// size must hit at another.
    pub fn fingerprint(&self) -> String {
        // Exhaustive destructuring: adding a field without deciding
        // whether it belongs in the fingerprint is a compile error.
        let LoopRagConfig {
            seed,
            k,
            retrieval,
            top_n,
            demos,
            profile,
            machine,
            eqcheck,
            slow_factor,
            single_shot,
            budget,
            threads: _, // no effect on outcomes, by the determinism contract
            feedback,
            search,
            rank,
        } = self;
        let budget = match budget {
            BudgetPolicy::Unlimited => "unlimited".to_string(),
            BudgetPolicy::VirtualCost { limit } => format!("vc{limit}"),
            BudgetPolicy::WallClock { limit } => format!("wc{}ns", limit.as_nanos()),
        };
        let search = match search {
            None => "none".to_string(),
            Some(s) => s.fingerprint(),
        };
        // Appended only when set, so ranker-free fingerprints — and the
        // serve memo keys derived from them — are byte-identical to
        // builds that predate the reranker.
        let rank = match rank {
            None => String::new(),
            Some(r) => format!("|{}", r.fingerprint()),
        };
        format!(
            "cfg:s{seed}|k{k}|r{retrieval:?}|n{top_n}|d{demos}|sf{:016x}|ss{single_shot}|b{budget}|fb{feedback}|{}|{}|{}|{search}{rank}",
            slow_factor.to_bits(),
            profile.fingerprint(),
            machine.fingerprint(),
            eqcheck.fingerprint(),
        )
    }
}

/// One candidate's journey through the pipeline.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Which round produced it (1 = step 1 batch, 3 = step 3 batch).
    pub round: u8,
    /// Whether it compiled (possibly after repair feedback).
    pub compiled: bool,
    /// Whether the compile succeeded only after feedback repair.
    pub repaired: bool,
    /// True for the beam-search winner injected by the hybrid arm
    /// ([`LoopRagConfig::search`]); always false for LLM candidates.
    pub from_search: bool,
    /// Testing verdict (`None` when it never compiled).
    pub verdict: Option<TestVerdict>,
    /// Estimated speedup over the original (0 when failed).
    pub speedup: f64,
}

impl CandidateReport {
    /// A candidate that never compiled (parse failure after any repair,
    /// or skipped because the budget ran out before generation).
    pub fn failed(round: u8) -> Self {
        CandidateReport {
            round,
            compiled: false,
            repaired: false,
            from_search: false,
            verdict: None,
            speedup: 0.0,
        }
    }

    /// A candidate that compiled, possibly only after repair feedback;
    /// not yet tested.
    pub fn compiled(round: u8, repaired: bool) -> Self {
        CandidateReport {
            round,
            compiled: true,
            repaired,
            from_search: false,
            verdict: None,
            speedup: 0.0,
        }
    }

    /// The hybrid arm's injected beam-search winner, joining the step-1
    /// batch before differential testing.
    pub fn search_winner() -> Self {
        CandidateReport {
            round: 1,
            compiled: true,
            repaired: false,
            from_search: true,
            verdict: None,
            speedup: 0.0,
        }
    }
}

/// Stage-1 output: one candidate slot's vetted emission. Generation
/// must parse every text anyway (to decide whether to send repair
/// feedback), so the parse is carried forward instead of being redone:
/// `None` means the slot was skipped over budget or failed to compile
/// even after repair.
#[derive(Debug, Clone)]
struct GeneratedCandidate {
    /// The compile check succeeded only after the repair exchange.
    repaired: bool,
    /// The parse of the model's final text.
    program: Option<Program>,
}

/// Stage-1 value: one round's worth of model emissions.
#[derive(Debug, Clone)]
struct GeneratedBatch {
    round: u8,
    items: Vec<GeneratedCandidate>,
}

/// Stage-2 value: per-candidate reports plus parsed programs, produced
/// by the parallel compile stage.
#[derive(Debug)]
struct CompiledBatch {
    items: Vec<(CandidateReport, Option<Program>)>,
}

/// Stage-3 value: the compiled batch with verdicts and speedups filled
/// in by the parallel test stage.
#[derive(Debug)]
struct TestedBatch {
    items: Vec<(CandidateReport, Option<Program>)>,
}

/// The pure ranking over a tested batch: the §4.3 testing-results and
/// performance-rankings feedback for step 3.
#[derive(Debug, Clone)]
struct Ranking {
    /// `(candidate index, code)` of passing candidates, fastest first.
    available: Vec<(usize, String)>,
    /// Indices of candidates that did not pass testing.
    failed: Vec<usize>,
}

fn rank_batch(batch: &TestedBatch) -> Ranking {
    let mut ranked: Vec<(usize, f64, String)> = batch
        .items
        .iter()
        .enumerate()
        .filter(|(_, (r, _))| r.verdict == Some(TestVerdict::Pass))
        .map(|(i, (r, p))| (i, r.speedup, print_program(p.as_ref().unwrap())))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let failed = batch
        .items
        .iter()
        .enumerate()
        .filter(|(_, (r, _))| r.verdict != Some(TestVerdict::Pass))
        .map(|(i, _)| i)
        .collect();
    Ranking {
        available: ranked.into_iter().map(|(i, _, t)| (i, t)).collect(),
        failed,
    }
}

/// The fastest passing candidate of a slice, if any.
fn best_of(items: &[(CandidateReport, Option<Program>)]) -> (bool, f64, Option<Program>) {
    let best = items
        .iter()
        .filter(|(r, _)| r.verdict == Some(TestVerdict::Pass))
        .max_by(|a, b| {
            a.0.speedup
                .partial_cmp(&b.0.speedup)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    match best {
        Some((r, p)) => (true, r.speedup, p.clone()),
        None => (false, 0.0, None),
    }
}

/// Pass/fail state of the pipeline after each step, for Table 7.
#[derive(Debug, Clone, Default)]
pub struct StepTrace {
    /// Passed using only step-1 candidates that compiled first-try.
    pub pass_step1: bool,
    /// Passed after the first compile-repair round.
    pub pass_step2: bool,
    /// Passed using only step-3 candidates that compiled first-try.
    pub pass_step3: bool,
    /// Passed using step-3 candidates including compile-repaired ones
    /// (isolates the second compile-feedback round).
    pub pass_step3_repaired: bool,
    /// Passed after the second compile-repair round (any candidate).
    pub pass_step4: bool,
    /// Best speedup among step-2 survivors.
    pub best_speedup_step2: f64,
    /// Best speedup among all survivors at step 4.
    pub best_speedup_step4: f64,
}

/// Final outcome for one kernel.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// Kernel name.
    pub name: String,
    /// True when at least one candidate passed testing (pass@k).
    pub passed: bool,
    /// The fastest passing candidate.
    pub best: Option<Program>,
    /// Estimated speedup of the best candidate (0 when none passed).
    pub speedup: f64,
    /// Per-candidate reports.
    pub candidates: Vec<CandidateReport>,
    /// Per-step trace for the feedback ablation.
    pub steps: StepTrace,
    /// Names of the demonstrations used.
    pub demo_ids: Vec<usize>,
    /// Simulated-LLM stream advances this run consumed (generation and
    /// repair calls). The serve layer's memo-hit responses report 0 here
    /// — the proof that a hit never touched the model.
    pub llm_calls: u64,
    /// Beam-search node expansions this run consumed (0 unless the
    /// hybrid arm ran). Likewise 0 on a serve memo hit.
    pub search_expansions: u64,
}

/// What the sequential budget pre-pass decided for one candidate before
/// the test stage fans out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TestPlan {
    /// Nothing to test (never compiled).
    NoProgram,
    /// The budget ran out; score as an execution timeout untested.
    OverBudget,
    /// Run differential testing and cost estimation on the pool.
    Test,
}

/// One tested slot off the pool: the verdict and estimated speedup
/// (when the candidate was runnable) plus its per-item trace buffer
/// (when tracing is enabled).
type TestedSlot = (Option<(TestVerdict, f64)>, Option<looprag_trace::LocalBuf>);

/// Stage-0 value: the retrieval stage's outcome — the sampled
/// demonstrations feeding prompt construction, plus their dataset ids
/// for the outcome report.
#[derive(Debug, Clone)]
struct RetrievedDemos {
    demos: Vec<Demonstration>,
    ids: Vec<usize>,
}

/// The LOOPRAG optimizer: dataset, knowledge base and configuration.
pub struct LoopRag {
    config: LoopRagConfig,
    dataset: Dataset,
    kb: KnowledgeBase,
    /// Example id -> index into `dataset.examples`, so demonstration
    /// lookup is O(1) instead of a linear scan per retrieved id.
    example_index: std::collections::HashMap<usize, usize>,
    /// Next free record id for mined feedback pairs.
    next_id: usize,
}

impl LoopRag {
    /// Builds the optimizer over a demonstration dataset.
    pub fn new(config: LoopRagConfig, dataset: Dataset) -> Self {
        let programs: Vec<(usize, Program)> = dataset
            .examples
            .iter()
            .map(|e| (e.id, e.program()))
            .collect();
        let kb = KnowledgeBase::build(programs.iter().map(|(i, p)| (*i, p)));
        let mut example_index = std::collections::HashMap::new();
        for (pos, e) in dataset.examples.iter().enumerate() {
            // First occurrence wins, matching the linear scan this
            // index replaces.
            example_index.entry(e.id).or_insert(pos);
        }
        let next_id = dataset.next_id();
        LoopRag {
            config,
            dataset,
            kb,
            example_index,
            next_id,
        }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &LoopRagConfig {
        &self.config
    }

    /// Access to the (possibly feedback-enriched) dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Number of examples in the knowledge base (grows under feedback
    /// indexing).
    pub fn knowledge_len(&self) -> usize {
        self.kb.len()
    }

    /// The knowledge base's running content fingerprint (see
    /// [`KnowledgeBase::state_fingerprint`]): two optimizers with equal
    /// config fingerprints and equal KB fingerprints produce
    /// bit-identical outcomes for the same kernel. The serve layer
    /// records this in snapshots and verifies it on restore.
    pub fn kb_fingerprint(&self) -> u64 {
        self.kb.state_fingerprint()
    }

    fn target_seed(&self, name: &str) -> u64 {
        looprag_runtime::fnv64(name.bytes()) ^ self.config.seed
    }

    /// Stage 0: retrieves the top-N examples from the knowledge base
    /// (sharded over the worker pool) and samples the prompt
    /// demonstrations. The sample draw is part of the sequential seed
    /// contract; the ranking itself is bit-identical at any pool size.
    fn retrieve_stage(&self, target: &Program, rng: &mut StdRng, threads: usize) -> RetrievedDemos {
        if self.dataset.examples.is_empty() || self.config.demos == 0 {
            return RetrievedDemos {
                demos: Vec::new(),
                ids: Vec::new(),
            };
        }
        let hits =
            self.kb
                .query_with_threads(target, self.config.retrieval, self.config.top_n, threads);
        let mut ids: Vec<usize> = hits.iter().map(|(id, _)| *id).collect();
        // Random sample of `demos` from the top-N, as in §5.
        let mut chosen = Vec::new();
        while chosen.len() < self.config.demos && !ids.is_empty() {
            let k = rng.gen_range(0..ids.len());
            chosen.push(ids.remove(k));
        }
        let demos = chosen
            .iter()
            .filter_map(|id| {
                self.example_index
                    .get(id)
                    .map(|&pos| &self.dataset.examples[pos])
            })
            .map(|e| Demonstration {
                source: e.source.clone(),
                optimized: e.optimized.clone(),
            })
            .collect();
        RetrievedDemos { demos, ids: chosen }
    }

    /// The feedback-indexing commit point: appends `outcome`'s verified
    /// winning candidate to the dataset and knowledge base as a mined
    /// original → optimized demonstration. A no-op unless
    /// [`LoopRagConfig::feedback`] is on and the outcome carries a
    /// passing candidate that actually improved on the original.
    ///
    /// Call this **between** kernels, sequentially (the campaign driver
    /// in `looprag_bench` does): insertion order is part of the
    /// knowledge base's determinism contract.
    ///
    /// Returns whether a record was ingested.
    pub fn ingest_outcome(&mut self, target: &Program, outcome: &OptimizationOutcome) -> bool {
        if !self.config.feedback || !outcome.passed || outcome.speedup <= 1.0 {
            return false;
        }
        let Some(best) = &outcome.best else {
            return false;
        };
        let id = self.next_id;
        self.next_id += 1;
        self.kb.insert(id, target);
        self.example_index.insert(id, self.dataset.examples.len());
        self.dataset.examples.push(ExampleRecord {
            id,
            source: print_program(target),
            optimized: print_program(best),
            recipe: vec![format!("mined:{}", outcome.name)],
            families: Vec::new(),
            stats: property_stats(target),
            provenance: Provenance::Mined,
        });
        true
    }

    /// Stage 1: generates a batch of K candidates with one compile-repair
    /// round. Strictly sequential — the model's RNG stream makes call
    /// order part of the seed contract — and the only stage that charges
    /// generation budget.
    fn generate_batch(
        &self,
        model: &mut SimLlm,
        base_prompt: &Prompt,
        round: u8,
        target_text: &str,
        budget: &Budget,
        rec: Option<&Recorder>,
    ) -> GeneratedBatch {
        let _span = looprag_trace::span(rec, "stage.generate", || {
            format!("round={round} k={}", self.config.k)
        });
        let mut items = Vec::with_capacity(self.config.k);
        for slot in 0..self.config.k {
            let item = if budget.exhausted() {
                GeneratedCandidate {
                    repaired: false,
                    program: None,
                }
            } else {
                budget.charge(GEN_COST);
                let text = model.generate(base_prompt);
                match compile(&text, "candidate") {
                    Ok(p) => GeneratedCandidate {
                        repaired: false,
                        program: Some(p),
                    },
                    Err(_) if self.config.single_shot => GeneratedCandidate {
                        repaired: false,
                        program: None,
                    },
                    Err(err) => {
                        // Compilation-results feedback (steps 2 and 4).
                        budget.charge(GEN_COST);
                        let repair = Prompt::compile_repair(target_text, text, err.to_string());
                        let retry = model.generate(&repair);
                        let program = compile(&retry, "candidate").ok();
                        GeneratedCandidate {
                            repaired: program.is_some(),
                            program,
                        }
                    }
                }
            };
            looprag_trace::instant(rec, "gen.candidate", || {
                format!(
                    "round={round} slot={slot} compiled={} repaired={}",
                    item.program.is_some(),
                    item.repaired
                )
            });
            items.push(item);
        }
        GeneratedBatch { round, items }
    }

    /// Stage 2: turns the vetted emissions into per-candidate reports
    /// plus programs. Pure per item, so thread count cannot affect the
    /// result.
    fn compile_batch(
        &self,
        generated: GeneratedBatch,
        threads: usize,
        rec: Option<&Recorder>,
    ) -> CompiledBatch {
        let _span = looprag_trace::span(rec, "stage.compile", || {
            format!("round={} items={}", generated.round, generated.items.len())
        });
        let round = generated.round;
        let items = par_map(threads, &generated.items, |_, g| match &g.program {
            Some(p) => (
                CandidateReport::compiled(round, g.repaired),
                Some(p.clone()),
            ),
            None => (CandidateReport::failed(round), None),
        });
        CompiledBatch { items }
    }

    /// Stage 3: differential testing and cost estimation — the dominant
    /// cost — on the worker pool. Cost estimates go through the shared
    /// `CostEngine` (via [`candidate_speedup`]), so duplicate candidates
    /// across batches, rounds and campaign arms are cache hits. Budget
    /// decisions happen sequentially in submission order *before* the
    /// fan-out, so which candidates get tested is identical at any
    /// thread count.
    fn test_batch(
        &self,
        prepared: &PreparedTarget,
        orig_cost: &CostReport,
        batch: CompiledBatch,
        budget: &Budget,
        threads: usize,
        rec: Option<&Recorder>,
    ) -> TestedBatch {
        let _span = looprag_trace::span(rec, "stage.test", || {
            format!(
                "round={} items={}",
                batch.items.first().map_or(0, |(r, _)| r.round),
                batch.items.len()
            )
        });
        let plans: Vec<TestPlan> = batch
            .items
            .iter()
            .map(|(_, prog)| {
                if prog.is_none() {
                    TestPlan::NoProgram
                } else if budget.exhausted() {
                    TestPlan::OverBudget
                } else {
                    budget.charge(TEST_COST);
                    TestPlan::Test
                }
            })
            .collect();
        let work: Vec<(&Option<Program>, TestPlan)> =
            batch.items.iter().map(|(_, p)| p).zip(plans).collect();
        let cfg = &self.config;
        // Under the (nondeterministic, opt-in) wall-clock policy the
        // deadline is also re-checked per candidate mid-flight, so the
        // overshoot stays bounded by the in-progress tests rather than
        // a whole batch. The deterministic policies return `None` and
        // are unaffected.
        let deadline = budget.deadline();
        // Per-candidate trace events go to a `LocalBuf` inside the
        // closure and are absorbed in submission order below, so the
        // logical stream is identical at any pool size (the same merge
        // discipline as `par_map` itself).
        let results: Vec<TestedSlot> = par_map(threads, &work, |i, (prog, plan)| {
            let mut buf = looprag_trace::local(rec);
            let out = match (plan, prog) {
                (TestPlan::Test, Some(p)) => {
                    if deadline.is_some_and(|d| std::time::Instant::now() > d) {
                        Some((TestVerdict::Timeout, 0.0))
                    } else {
                        if let Some(b) = buf.as_mut() {
                            b.open("test.candidate", format!("slot={i}"));
                        }
                        let verdict = prepared.differential_test(p, &cfg.eqcheck);
                        let speedup = if verdict == TestVerdict::Pass {
                            // Slower-than-threshold candidates come
                            // back as 0: passing but inefficient.
                            candidate_speedup(orig_cost, p, &cfg.machine, cfg.slow_factor)
                        } else {
                            0.0
                        };
                        if let Some(b) = buf.as_mut() {
                            let tag = match &verdict {
                                TestVerdict::Pass => "pass",
                                TestVerdict::IncorrectAnswer { .. } => "incorrect",
                                TestVerdict::RuntimeError { .. } => "runtime_error",
                                TestVerdict::Timeout => "timeout",
                            };
                            b.instant(
                                "test.verdict",
                                format!("slot={i} verdict={tag} speedup={speedup}"),
                            );
                            b.close();
                        }
                        Some((verdict, speedup))
                    }
                }
                (TestPlan::OverBudget, Some(_)) => {
                    if let Some(b) = buf.as_mut() {
                        b.instant("test.over_budget", format!("slot={i}"));
                    }
                    Some((TestVerdict::Timeout, 0.0))
                }
                _ => None,
            };
            (out, buf)
        });
        let mut verdicts = Vec::with_capacity(results.len());
        let mut bufs = Vec::new();
        for (v, b) in results {
            verdicts.push(v);
            if let Some(b) = b {
                bufs.push(b);
            }
        }
        if let Some(r) = rec {
            r.absorb(bufs);
        }
        let items = batch
            .items
            .into_iter()
            .zip(verdicts)
            .map(|((mut report, prog), v)| {
                if let Some((verdict, speedup)) = v {
                    report.speedup = speedup;
                    report.verdict = Some(verdict);
                }
                (report, prog)
            })
            .collect();
        TestedBatch { items }
    }

    /// Runs the full four-step pipeline on one kernel.
    pub fn optimize(&self, name: &str, target: &Program) -> OptimizationOutcome {
        self.optimize_with_threads(name, target, self.config.threads)
    }

    /// Runs the pipeline with an explicit worker-pool size for the
    /// parallel stages (0 = auto), overriding [`LoopRagConfig::threads`].
    /// Outcomes are bit-identical at any pool size.
    pub fn optimize_with_threads(
        &self,
        name: &str,
        target: &Program,
        threads: usize,
    ) -> OptimizationOutcome {
        self.optimize_traced(name, target, threads, None)
    }

    /// [`LoopRag::optimize_with_threads`] with an optional trace
    /// recorder capturing stage spans, per-candidate generation and
    /// testing events, and the hybrid search's expansion stream. With
    /// `rec: None` (the production default) not a single trace
    /// allocation happens and outcomes are byte-identical to the
    /// untraced entry points; with a recorder, the logical event stream
    /// is bit-identical at any pool size because parallel stages buffer
    /// events per item and absorb them in submission order.
    pub fn optimize_traced(
        &self,
        name: &str,
        target: &Program,
        threads: usize,
        rec: Option<&Recorder>,
    ) -> OptimizationOutcome {
        let _span = looprag_trace::span(rec, "pipeline.optimize", || name.to_string());
        let budget = Budget::new(self.config.budget.clone());
        let threads = resolve_threads(threads);
        let mut rng = StdRng::seed_from_u64(self.target_seed(name));
        let mut model = SimLlm::new(self.config.profile.clone(), rng.gen());
        let target_text = print_program(target);
        // Per-kernel preparation, built once and shared by every
        // candidate: the coverage suite, the original scaled and
        // compiled (candidates stop recompiling it), the ground-truth
        // stores for all suite inputs from one batched sweep (candidates
        // stop re-running the original), and the baseline cost for
        // speedup ranking (engine-backed: a repeat kernel, or one a
        // search arm already scored, is a cache hit). Each candidate
        // verdict is then a batched lane sweep against the cached
        // expected stores.
        let (prepared, orig_cost) = {
            let _s = looprag_trace::span(rec, "stage.prepare", String::new);
            let prepared = PreparedTarget::prepare(target, &self.config.eqcheck);
            let orig_cost = estimate_cost(target, &self.config.machine)
                .unwrap_or_else(|_| CostReport::unreachable());
            (prepared, orig_cost)
        };

        // Step 1: retrieval stage + first batch.
        let retrieved = {
            let _s = looprag_trace::span(rec, "stage.retrieve", String::new);
            self.retrieve_stage(target, &mut rng, threads)
        };
        let RetrievedDemos {
            demos,
            ids: demo_ids,
        } = retrieved;
        let prompt1 = if demos.is_empty() {
            Prompt::base(target_text.clone())
        } else {
            Prompt::with_demonstrations(target_text.clone(), demos)
        };
        looprag_trace::instant(rec, "retrieve.demos", || format!("ids={demo_ids:?}"));
        let gen1 = self.generate_batch(&mut model, &prompt1, 1, &target_text, &budget, rec);
        let mut compiled1 = self.compile_batch(gen1, threads, rec);

        // Hybrid arm: the legality-guided beam search runs alongside
        // step 1 and its winner joins the batch before differential
        // testing. Search consumes no model calls and no RNG, so the
        // fixed-seed LLM stream is untouched; with `search: None`
        // (default) this block is a no-op and outcomes stay
        // byte-identical to a search-free build.
        let mut search_expansions = 0u64;
        if let Some(base) = &self.config.search {
            let _s = looprag_trace::span(rec, "stage.search", || name.to_string());
            let mut scfg = base.clone();
            scfg.threads = threads;
            // The pipeline's machine model is authoritative: the winner
            // competes in (and is ranked by) this pipeline, so search
            // must score under the same model or its "winner" could be
            // optimized for a different machine.
            scfg.machine = self.config.machine.clone();
            scfg.rank = self.config.rank.clone();
            let found = looprag_search::search_traced(target, &scfg, rec);
            search_expansions = found.stats.nodes_expanded as u64;
            if !found.recipe.steps.is_empty() {
                compiled1
                    .items
                    .push((CandidateReport::search_winner(), Some(found.program)));
            }
        }

        // Step 2: test the (possibly repaired) batch and rank.
        let batch1 = self.test_batch(&prepared, &orig_cost, compiled1, &budget, threads, rec);
        let mut steps = StepTrace {
            // The step-1 column isolates first-try *LLM* compiles, so
            // the injected search winner does not count toward it.
            pass_step1: batch1.items.iter().any(|(r, _)| {
                r.compiled && !r.repaired && !r.from_search && r.verdict == Some(TestVerdict::Pass)
            }),
            pass_step2: batch1
                .items
                .iter()
                .any(|(r, _)| r.verdict == Some(TestVerdict::Pass)),
            best_speedup_step2: batch1
                .items
                .iter()
                .filter(|(r, _)| r.verdict == Some(TestVerdict::Pass))
                .map(|(r, _)| r.speedup)
                .fold(0.0, f64::max),
            ..StepTrace::default()
        };

        if self.config.single_shot {
            let (passed, speedup, best_prog) = best_of(&batch1.items);
            steps.pass_step3 = steps.pass_step1;
            steps.pass_step3_repaired = steps.pass_step1;
            steps.pass_step4 = steps.pass_step2;
            steps.best_speedup_step4 = speedup;
            let calls = model.calls();
            looprag_trace::value(rec, "pipeline.llm_calls", calls as i64, String::new);
            looprag_trace::value(
                rec,
                "pipeline.search_expansions",
                search_expansions as i64,
                String::new,
            );
            return OptimizationOutcome {
                name: name.to_string(),
                passed,
                best: best_prog,
                speedup,
                candidates: batch1.items.into_iter().map(|(r, _)| r).collect(),
                steps,
                demo_ids,
                llm_calls: model.calls(),
                search_expansions,
            };
        }

        // Step 3: testing results + performance rankings feedback.
        let ranking = rank_batch(&batch1);
        let prompt3 = Prompt::test_and_rank(target_text.clone(), ranking.available, ranking.failed);
        let gen3 = self.generate_batch(&mut model, &prompt3, 3, &target_text, &budget, rec);
        let compiled3 = self.compile_batch(gen3, threads, rec);

        // Step 4: test the second batch; select the fastest overall.
        let batch3 = self.test_batch(&prepared, &orig_cost, compiled3, &budget, threads, rec);
        steps.pass_step3 = batch3
            .items
            .iter()
            .any(|(r, _)| r.compiled && !r.repaired && r.verdict == Some(TestVerdict::Pass));
        steps.pass_step3_repaired = batch3
            .items
            .iter()
            .any(|(r, _)| r.verdict == Some(TestVerdict::Pass));
        steps.pass_step4 = steps.pass_step2
            || batch3
                .items
                .iter()
                .any(|(r, _)| r.verdict == Some(TestVerdict::Pass));

        let mut all: Vec<(CandidateReport, Option<Program>)> = batch1.items;
        all.extend(batch3.items);
        let (passed, speedup, best_prog) = best_of(&all);
        steps.best_speedup_step4 = speedup;
        let calls = model.calls();
        looprag_trace::value(rec, "pipeline.llm_calls", calls as i64, String::new);
        looprag_trace::value(
            rec,
            "pipeline.search_expansions",
            search_expansions as i64,
            String::new,
        );

        OptimizationOutcome {
            name: name.to_string(),
            passed,
            best: best_prog,
            speedup,
            candidates: all.into_iter().map(|(r, _)| r).collect(),
            steps,
            demo_ids,
            llm_calls: model.calls(),
            search_expansions,
        }
    }
}
