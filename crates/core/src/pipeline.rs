//! The LOOPRAG pipeline (§3): dataset-backed retrieval plus the
//! four-step feedback-based iterative generation of §4.3.
//!
//! * **Step 1** — prompt with retrieved demonstrations, generate K
//!   candidates, compile each.
//! * **Step 2** — regenerate compile failures with the compiler
//!   diagnostics (first round of compilation feedback), then run
//!   mutation/coverage/differential testing and rank the survivors by
//!   estimated performance.
//! * **Step 3** — prompt with testing results and performance rankings,
//!   generate a fresh batch.
//! * **Step 4** — repeat compile-repair and testing for the new batch,
//!   and output the fastest passing candidate overall.

use crate::metrics::candidate_speedup;
use looprag_eqcheck::{build_test_suite, differential_test, EqCheckConfig, TestSuite, TestVerdict};
use looprag_ir::{compile, print_program, Program};
use looprag_llm::{Demonstration, Feedback, LanguageModel, LlmProfile, Prompt, SimLlm};
use looprag_machine::{estimate_cost, CostReport, MachineConfig};
use looprag_retrieval::{RetrievalMode, Retriever};
use looprag_synth::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct LoopRagConfig {
    /// Base seed; per-target seeds derive from it and the kernel name.
    pub seed: u64,
    /// Number of candidates per generation round (the paper's K).
    pub k: usize,
    /// Retrieval arm (the Table 6 ablation).
    pub retrieval: RetrievalMode,
    /// Candidates retrieved before sampling (the paper's N).
    pub top_n: usize,
    /// Demonstrations sampled from the top-N (the paper uses 3).
    pub demos: usize,
    /// Base-LLM profile.
    pub profile: LlmProfile,
    /// Machine model for performance ranking and reported speedups.
    pub machine: MachineConfig,
    /// Equivalence-checking configuration.
    pub eqcheck: EqCheckConfig,
    /// Candidates whose estimated cost exceeds `orig_cost * slow_factor`
    /// count as inefficient failures (the paper's 120 s wall limit).
    pub slow_factor: f64,
    /// When true, run only step 1 with no feedback of any kind — the
    /// base-LLM prompting arm of Table 2.
    pub single_shot: bool,
    /// Wall-clock budget per kernel; once exceeded, remaining candidates
    /// are skipped (scored as failures). Mirrors the paper's per-kernel
    /// generation time limits.
    pub kernel_time_budget: std::time::Duration,
}

impl LoopRagConfig {
    /// Default configuration over a given profile.
    pub fn new(profile: LlmProfile) -> Self {
        LoopRagConfig {
            seed: 0x100B_4A6D,
            k: 7,
            retrieval: RetrievalMode::LoopAware,
            top_n: 10,
            demos: 3,
            profile,
            machine: MachineConfig::gcc(),
            eqcheck: EqCheckConfig::default(),
            slow_factor: 50.0,
            single_shot: false,
            kernel_time_budget: std::time::Duration::from_secs(90),
        }
    }
}

/// One candidate's journey through the pipeline.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Which round produced it (1 = step 1 batch, 3 = step 3 batch).
    pub round: u8,
    /// Whether it compiled (possibly after repair feedback).
    pub compiled: bool,
    /// Whether the compile succeeded only after feedback repair.
    pub repaired: bool,
    /// Testing verdict (`None` when it never compiled).
    pub verdict: Option<TestVerdict>,
    /// Estimated speedup over the original (0 when failed).
    pub speedup: f64,
}

/// Pass/fail state of the pipeline after each step, for Table 7.
#[derive(Debug, Clone, Default)]
pub struct StepTrace {
    /// Passed using only step-1 candidates that compiled first-try.
    pub pass_step1: bool,
    /// Passed after the first compile-repair round.
    pub pass_step2: bool,
    /// Passed using only step-3 candidates that compiled first-try.
    pub pass_step3: bool,
    /// Passed using step-3 candidates including compile-repaired ones
    /// (isolates the second compile-feedback round).
    pub pass_step3_repaired: bool,
    /// Passed after the second compile-repair round (any candidate).
    pub pass_step4: bool,
    /// Best speedup among step-2 survivors.
    pub best_speedup_step2: f64,
    /// Best speedup among all survivors at step 4.
    pub best_speedup_step4: f64,
}

/// Final outcome for one kernel.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// Kernel name.
    pub name: String,
    /// True when at least one candidate passed testing (pass@k).
    pub passed: bool,
    /// The fastest passing candidate.
    pub best: Option<Program>,
    /// Estimated speedup of the best candidate (0 when none passed).
    pub speedup: f64,
    /// Per-candidate reports.
    pub candidates: Vec<CandidateReport>,
    /// Per-step trace for the feedback ablation.
    pub steps: StepTrace,
    /// Names of the demonstrations used.
    pub demo_ids: Vec<usize>,
}

/// The LOOPRAG optimizer: dataset, retriever and configuration.
pub struct LoopRag {
    config: LoopRagConfig,
    dataset: Dataset,
    retriever: Retriever,
    /// Example id -> index into `dataset.examples`, so demonstration
    /// lookup is O(1) instead of a linear scan per retrieved id.
    example_index: std::collections::HashMap<usize, usize>,
}

impl LoopRag {
    /// Builds the optimizer over a demonstration dataset.
    pub fn new(config: LoopRagConfig, dataset: Dataset) -> Self {
        let programs: Vec<(usize, Program)> = dataset
            .examples
            .iter()
            .map(|e| (e.id, e.program()))
            .collect();
        let retriever = Retriever::build(programs.iter().map(|(i, p)| (*i, p)));
        let mut example_index = std::collections::HashMap::new();
        for (pos, e) in dataset.examples.iter().enumerate() {
            // First occurrence wins, matching the linear scan this
            // index replaces.
            example_index.entry(e.id).or_insert(pos);
        }
        LoopRag {
            config,
            dataset,
            retriever,
            example_index,
        }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &LoopRagConfig {
        &self.config
    }

    fn target_seed(&self, name: &str) -> u64 {
        let mut h = 1469598103934665603u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(1099511628211);
        }
        h ^ self.config.seed
    }

    /// Retrieves top-N and samples the prompt demonstrations.
    fn demonstrations(
        &self,
        target: &Program,
        rng: &mut StdRng,
    ) -> (Vec<Demonstration>, Vec<usize>) {
        if self.dataset.examples.is_empty() || self.config.demos == 0 {
            return (Vec::new(), Vec::new());
        }
        let hits = self
            .retriever
            .query(target, self.config.retrieval, self.config.top_n);
        let mut ids: Vec<usize> = hits.iter().map(|(id, _)| *id).collect();
        // Random sample of `demos` from the top-N, as in §5.
        let mut chosen = Vec::new();
        while chosen.len() < self.config.demos && !ids.is_empty() {
            let k = rng.gen_range(0..ids.len());
            chosen.push(ids.remove(k));
        }
        let demos = chosen
            .iter()
            .filter_map(|id| {
                self.example_index
                    .get(id)
                    .map(|&pos| &self.dataset.examples[pos])
            })
            .map(|e| Demonstration {
                source: e.source.clone(),
                optimized: e.optimized.clone(),
            })
            .collect();
        (demos, chosen)
    }

    /// Generates a batch of K candidates, with one compile-repair round.
    fn generate_batch(
        &self,
        model: &mut SimLlm,
        base_prompt: &Prompt,
        round: u8,
        target_text: &str,
        deadline: std::time::Instant,
    ) -> Vec<(CandidateReport, Option<Program>)> {
        let mut out = Vec::new();
        for _ in 0..self.config.k {
            if std::time::Instant::now() > deadline {
                out.push((
                    CandidateReport {
                        round,
                        compiled: false,
                        repaired: false,
                        verdict: None,
                        speedup: 0.0,
                    },
                    None,
                ));
                continue;
            }
            let text = model.generate(base_prompt);
            match compile(&text, "candidate") {
                Ok(p) => out.push((
                    CandidateReport {
                        round,
                        compiled: true,
                        repaired: false,
                        verdict: None,
                        speedup: 0.0,
                    },
                    Some(p),
                )),
                Err(err) if self.config.single_shot => {
                    let _ = err;
                    out.push((
                        CandidateReport {
                            round,
                            compiled: false,
                            repaired: false,
                            verdict: None,
                            speedup: 0.0,
                        },
                        None,
                    ));
                }
                Err(err) => {
                    // Compilation-results feedback (steps 2 and 4).
                    let repair_prompt = Prompt {
                        target: target_text.to_string(),
                        demonstrations: Vec::new(),
                        feedback: Some(Feedback::Compile {
                            last_code: text,
                            error: err.to_string(),
                        }),
                    };
                    let retry = model.generate(&repair_prompt);
                    match compile(&retry, "candidate") {
                        Ok(p) => out.push((
                            CandidateReport {
                                round,
                                compiled: true,
                                repaired: true,
                                verdict: None,
                                speedup: 0.0,
                            },
                            Some(p),
                        )),
                        Err(_) => out.push((
                            CandidateReport {
                                round,
                                compiled: false,
                                repaired: false,
                                verdict: None,
                                speedup: 0.0,
                            },
                            None,
                        )),
                    }
                }
            }
        }
        out
    }

    /// Tests and scores a batch in place.
    fn test_batch(
        &self,
        original: &Program,
        orig_cost: &CostReport,
        suite: &TestSuite,
        batch: &mut [(CandidateReport, Option<Program>)],
        deadline: std::time::Instant,
    ) {
        for (report, prog) in batch.iter_mut() {
            let Some(p) = prog else { continue };
            if std::time::Instant::now() > deadline {
                report.verdict = Some(TestVerdict::Timeout);
                continue;
            }
            let verdict = differential_test(original, p, suite, &self.config.eqcheck);
            if verdict == TestVerdict::Pass {
                let speedup =
                    candidate_speedup(orig_cost, p, &self.config.machine, self.config.slow_factor);
                report.speedup = speedup;
                if speedup == 0.0 {
                    // Slower than the inefficiency threshold: keep it as a
                    // passing-but-inefficient candidate with speedup 0.
                    report.verdict = Some(TestVerdict::Pass);
                    continue;
                }
            }
            report.verdict = Some(verdict);
        }
    }

    /// Runs the full four-step pipeline on one kernel.
    pub fn optimize(&self, name: &str, target: &Program) -> OptimizationOutcome {
        let deadline = std::time::Instant::now() + self.config.kernel_time_budget;
        let mut rng = StdRng::seed_from_u64(self.target_seed(name));
        let mut model = SimLlm::new(self.config.profile.clone(), rng.gen());
        let target_text = print_program(target);
        let suite = build_test_suite(target, &self.config.eqcheck);
        let orig_cost = estimate_cost(target, &self.config.machine).unwrap_or(CostReport {
            cycles: f64::INFINITY,
            breakdown: Default::default(),
            instances: 0,
            l1_hits: 0,
            l2_hits: 0,
            mem_accesses: 0,
            vectorized: Vec::new(),
            parallel_entries: 0,
        });

        // Step 1: demonstrations + first batch.
        let (demos, demo_ids) = self.demonstrations(target, &mut rng);
        let prompt1 = if demos.is_empty() {
            Prompt::base(target_text.clone())
        } else {
            Prompt::with_demonstrations(target_text.clone(), demos)
        };
        let mut batch1 = self.generate_batch(&mut model, &prompt1, 1, &target_text, deadline);

        // Step 2: test the (possibly repaired) batch and rank.
        self.test_batch(target, &orig_cost, &suite, &mut batch1, deadline);
        let mut steps = StepTrace {
            pass_step1: batch1
                .iter()
                .any(|(r, _)| r.compiled && !r.repaired && r.verdict == Some(TestVerdict::Pass)),
            pass_step2: batch1
                .iter()
                .any(|(r, _)| r.verdict == Some(TestVerdict::Pass)),
            best_speedup_step2: batch1
                .iter()
                .filter(|(r, _)| r.verdict == Some(TestVerdict::Pass))
                .map(|(r, _)| r.speedup)
                .fold(0.0, f64::max),
            ..StepTrace::default()
        };

        if self.config.single_shot {
            let best = batch1
                .iter()
                .filter(|(r, _)| r.verdict == Some(TestVerdict::Pass))
                .max_by(|a, b| {
                    a.0.speedup
                        .partial_cmp(&b.0.speedup)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let (passed, speedup, best_prog) = match best {
                Some((r, p)) => (true, r.speedup, p.clone()),
                None => (false, 0.0, None),
            };
            steps.pass_step3 = steps.pass_step1;
            steps.pass_step3_repaired = steps.pass_step1;
            steps.pass_step4 = steps.pass_step2;
            steps.best_speedup_step4 = speedup;
            return OptimizationOutcome {
                name: name.to_string(),
                passed,
                best: best_prog,
                speedup,
                candidates: batch1.into_iter().map(|(r, _)| r).collect(),
                steps,
                demo_ids,
            };
        }

        // Step 3: testing results + performance rankings feedback.
        let mut ranked: Vec<(usize, f64, String)> = batch1
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| r.verdict == Some(TestVerdict::Pass))
            .map(|(i, (r, p))| (i, r.speedup, print_program(p.as_ref().unwrap())))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let failed: Vec<usize> = batch1
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| r.verdict != Some(TestVerdict::Pass))
            .map(|(i, _)| i)
            .collect();
        let prompt3 = Prompt {
            target: target_text.clone(),
            demonstrations: Vec::new(),
            feedback: Some(Feedback::TestAndRank {
                available: ranked.iter().map(|(i, _, t)| (*i, t.clone())).collect(),
                failed,
            }),
        };
        let mut batch3 = self.generate_batch(&mut model, &prompt3, 3, &target_text, deadline);

        // Step 4: test the second batch; select the fastest overall.
        self.test_batch(target, &orig_cost, &suite, &mut batch3, deadline);
        steps.pass_step3 = batch3
            .iter()
            .any(|(r, _)| r.compiled && !r.repaired && r.verdict == Some(TestVerdict::Pass));
        steps.pass_step3_repaired = batch3
            .iter()
            .any(|(r, _)| r.verdict == Some(TestVerdict::Pass));
        steps.pass_step4 = steps.pass_step2
            || batch3
                .iter()
                .any(|(r, _)| r.verdict == Some(TestVerdict::Pass));

        let mut all: Vec<(CandidateReport, Option<Program>)> = batch1;
        all.extend(batch3);
        let best = all
            .iter()
            .filter(|(r, _)| r.verdict == Some(TestVerdict::Pass))
            .max_by(|a, b| {
                a.0.speedup
                    .partial_cmp(&b.0.speedup)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        let (passed, speedup, best_prog) = match best {
            Some((r, p)) => (true, r.speedup, p.clone()),
            None => (false, 0.0, None),
        };
        steps.best_speedup_step4 = speedup;

        OptimizationOutcome {
            name: name.to_string(),
            passed,
            best: best_prog,
            speedup,
            candidates: all.into_iter().map(|(r, _)| r).collect(),
            steps,
            demo_ids,
        }
    }
}
