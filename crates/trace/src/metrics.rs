//! The process-wide metrics registry: named counters, gauges and
//! log-bucketed histograms behind cheap cloneable handles.
//!
//! Handles are `Arc`ed atomics — registering once (typically in a
//! `OnceLock`) and bumping through the handle costs one relaxed atomic
//! op, the same as the ad-hoc `static AtomicU64` counters this
//! registry absorbed. The registry itself is only locked to register
//! or to snapshot.
//!
//! Registry values are **observational**: cumulative over the process,
//! monotone for counters, and deliberately excluded from the logical
//! trace stream (concurrent workers can race to the same cache miss,
//! so instantaneous readings are not pool-size-invariant).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotone counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: one per power of two (`0`, `1`, `2..3`, `4..7`, …, up
/// to `2^63..`), plus the zero bucket.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct Histo {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A log-bucketed histogram handle: `observe(v)` lands `v` in bucket
/// `⌊log2 v⌋ + 1` (bucket 0 holds zeros), so magnitudes are captured
/// with 65 fixed slots and no configuration.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<Histo>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// `0 → 0`; `v > 0 → ⌊log2 v⌋ + 1`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// A named-metric registry. Use [`metrics`] for the process-wide one;
/// fresh instances exist for isolated tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, name: &str, make: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.lock().unwrap();
        slots.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.slot(name, || Slot::Counter(Counter(Arc::new(AtomicU64::new(0))))) {
            Slot::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.slot(name, || Slot::Gauge(Gauge(Arc::new(AtomicI64::new(0))))) {
            Slot::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.slot(name, || {
            Slot::Histogram(Histogram(Arc::new(Histo {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            })))
        }) {
            Slot::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// A point-in-time snapshot of every registered metric, in sorted
    /// name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().unwrap();
        let entries = slots
            .iter()
            .map(|(name, slot)| {
                let value = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h
                            .0
                            .buckets
                            .iter()
                            .enumerate()
                            .map(|(i, b)| (i as u32, b.load(Ordering::Relaxed)))
                            .filter(|(_, n)| *n > 0)
                            .collect(),
                    },
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// The process-wide registry every compat shim routes through.
pub fn metrics() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// One snapshotted metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Cumulative counter reading.
    Counter(u64),
    /// Last gauge value.
    Gauge(i64),
    /// Histogram state: observation count, sum, and the non-empty
    /// `(bucket index, count)` pairs.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Non-empty `(bucket index, count)` pairs, ascending.
        buckets: Vec<(u32, u64)>,
    },
}

/// A point-in-time view of a registry, ordered by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Metric name → value, in sorted order.
    pub entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// The counter reading under `name` (0 when absent or not a
    /// counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Counter increases since `before`, dropping zero deltas. The
    /// standard way to attribute process-wide work to one run: snapshot
    /// before, run, snapshot after, delta.
    pub fn counter_deltas(&self, before: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.entries
            .iter()
            .filter_map(|(name, v)| match v {
                MetricValue::Counter(after) => {
                    let delta = after.saturating_sub(before.counter(name));
                    (delta > 0).then(|| (name.clone(), delta))
                }
                _ => None,
            })
            .collect()
    }

    /// Canonical compact-JSON rendering (sorted names, fixed field
    /// order), for logging alongside a trace.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Metric names are programmer-chosen identifiers
            // (dotted ASCII); escape anyway for safety.
            crate::export::push_json_str(&mut out, name);
            out.push(':');
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{{\"counter\":{c}}}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(out, "{{\"gauge\":{g}}}");
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let _ = write!(out, "{{\"count\":{count},\"sum\":{sum},\"buckets\":[");
                    for (j, (b, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{b},{n}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_snapshot_sorts() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("z.second");
        let b = reg.counter("z.second");
        a.inc();
        b.add(2);
        reg.gauge("a.first").set(-7);
        let h = reg.histogram("m.hist");
        h.observe(0);
        h.observe(1);
        h.observe(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("z.second"), 3);
        let names: Vec<&String> = snap.entries.keys().collect();
        assert_eq!(names, ["a.first", "m.hist", "z.second"]);
        assert_eq!(
            snap.entries["m.hist"],
            MetricValue::Histogram {
                count: 3,
                sum: 6,
                // 0 → bucket 0, 1 → bucket 1, 5 → bucket 3 (4..7).
                buckets: vec![(0, 1), (1, 1), (3, 1)],
            }
        );
    }

    #[test]
    fn counter_deltas_attribute_work() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("work");
        reg.counter("idle");
        let before = reg.snapshot();
        c.add(5);
        let deltas = reg.snapshot().counter_deltas(&before);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas["work"], 5);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }
}
