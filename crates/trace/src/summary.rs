//! Aggregation of a logical event stream into per-name totals, and a
//! structural diff between two aggregations — the "why did this run do
//! more work than that one?" view.

use crate::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-name totals over a logical stream: span open counts, point
/// event counts, and summed measurements. Built purely from the
/// logical stream, so two runs with identical streams summarize
/// identically — the interesting call is [`TraceSummary::diff`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Span name → number of times it opened.
    pub spans: BTreeMap<String, u64>,
    /// Point-event name → occurrence count.
    pub instants: BTreeMap<String, u64>,
    /// Measurement name → sum of recorded values.
    pub values: BTreeMap<String, i64>,
}

/// One differing row of a summary diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryDiff {
    /// `span:`, `instant:` or `value:` prefixed name.
    pub key: String,
    /// Total in the left summary (0 when absent).
    pub left: i64,
    /// Total in the right summary (0 when absent).
    pub right: i64,
}

fn diff_maps<V: Copy>(
    prefix: &str,
    a: &BTreeMap<String, V>,
    b: &BTreeMap<String, V>,
    to_i64: fn(V) -> i64,
    out: &mut Vec<SummaryDiff>,
) {
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for k in keys {
        let left = a.get(k).copied().map(to_i64).unwrap_or(0);
        let right = b.get(k).copied().map(to_i64).unwrap_or(0);
        if left != right {
            out.push(SummaryDiff {
                key: format!("{prefix}:{k}"),
                left,
                right,
            });
        }
    }
}

impl TraceSummary {
    /// Aggregates a logical stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = TraceSummary::default();
        for e in events {
            match e.kind {
                EventKind::Open => *s.spans.entry(e.name.clone()).or_default() += 1,
                EventKind::Close => {}
                EventKind::Instant => *s.instants.entry(e.name.clone()).or_default() += 1,
                EventKind::Value(v) => *s.values.entry(e.name.clone()).or_default() += v,
            }
        }
        s
    }

    /// Every name whose total differs between the two summaries
    /// (absent = 0), sorted by kind then name.
    pub fn diff(&self, other: &TraceSummary) -> Vec<SummaryDiff> {
        let mut out = Vec::new();
        let of_u64 = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        diff_maps("span", &self.spans, &other.spans, of_u64, &mut out);
        diff_maps("instant", &self.instants, &other.instants, of_u64, &mut out);
        diff_maps("value", &self.values, &other.values, |v| v, &mut out);
        out
    }

    /// Canonical compact-JSON rendering (sorted names, fixed field
    /// order) — byte-stable for equal summaries.
    pub fn to_canonical_json(&self) -> String {
        fn section<V: std::fmt::Display>(out: &mut String, map: &BTreeMap<String, V>) {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                crate::export::push_json_str(out, k);
                let _ = write!(out, ":{v}");
            }
            out.push('}');
        }
        let mut out = String::from("{\"spans\":");
        section(&mut out, &self.spans);
        out.push_str(",\"instants\":");
        section(&mut out, &self.instants);
        out.push_str(",\"values\":");
        section(&mut out, &self.values);
        out.push('}');
        out
    }

    /// A human-readable rendering of [`TraceSummary::diff`], one
    /// `key: left -> right` line each; empty string when identical.
    pub fn render_diff(&self, other: &TraceSummary) -> String {
        let mut out = String::new();
        for row in self.diff(other) {
            let _ = writeln!(out, "{}: {} -> {}", row.key, row.left, row.right);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, TraceConfig};

    fn run(extra_tick: bool) -> Vec<Event> {
        let rec = Recorder::new(TraceConfig { wall_clock: false });
        rec.open("stage", String::new());
        rec.instant("tick", String::new());
        if extra_tick {
            rec.instant("tick", String::new());
        }
        rec.value("n", 2, String::new());
        rec.close();
        rec.finish()
    }

    #[test]
    fn summaries_of_equal_runs_are_equal() {
        let a = TraceSummary::from_events(&run(false));
        let b = TraceSummary::from_events(&run(false));
        assert_eq!(a, b);
        assert!(a.diff(&b).is_empty());
        assert_eq!(a.to_canonical_json(), b.to_canonical_json());
    }

    #[test]
    fn diff_reports_only_differing_names() {
        let a = TraceSummary::from_events(&run(false));
        let b = TraceSummary::from_events(&run(true));
        let d = a.diff(&b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].key, "instant:tick");
        assert_eq!((d[0].left, d[0].right), (1, 2));
        assert_eq!(a.render_diff(&b), "instant:tick: 1 -> 2\n");
    }
}
