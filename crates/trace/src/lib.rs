//! # looprag-trace
//!
//! Deterministic tracing and metrics for the LOOPRAG stack.
//!
//! ## The logical clock
//!
//! A [`Recorder`] collects hierarchical span open/close events and
//! point events, stamped with **logical sequence numbers** as the
//! primary clock. Wall-clock durations are captured in a side channel
//! ([`Event::wall_ns`]) that is excluded from the canonical export and
//! from every comparison, so the logical event stream of a fixed-seed
//! run is bit-identical at any worker-pool size.
//!
//! Parallel stages keep that guarantee with the same discipline as
//! `looprag_runtime::par_map`: each work item records into its own
//! [`LocalBuf`], and the control thread [`absorb`]s the buffers back in
//! **submission order**, assigning sequence numbers at merge time.
//! Which worker ran an item, and when, can never reorder the stream.
//!
//! ## The disabled path
//!
//! Every instrumentation point in the stack takes an
//! `Option<&Recorder>` that defaults to `None`. The helpers here
//! ([`span`], [`instant`], [`value`], [`local`]) are guaranteed no-ops
//! for `None`: detail strings are built by closures that are never
//! called, so the disabled path allocates nothing and costs a single
//! branch.
//!
//! ## Exports
//!
//! * [`export::to_canonical_json`] / [`export::from_canonical_json`] —
//!   a byte-stable canonical rendering of the logical stream (wall
//!   side channel excluded) that round-trips exactly.
//! * [`export::to_chrome_json`] — Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto, with `ts` driven by the logical
//!   clock and wall durations attached as args.
//! * [`TraceSummary`] — per-name aggregation (span counts, event
//!   counts, value sums) suitable for diffing two runs.
//!
//! ## Metrics
//!
//! A process-wide [`MetricsRegistry`] of named counters, gauges and
//! log-bucketed histograms (see [`metrics`]) absorbs the scattered
//! global counters that used to live in individual crates
//! (`looprag_llm::stream_advance_count`,
//! `looprag_search::expansion_count`, the cost-engine hit counts);
//! those functions remain as thin compat shims. Registry values are
//! observational and deliberately **not** part of the logical event
//! stream: under concurrency two workers can race to the same
//! cost-cache miss, so global counter readings are monotone and
//! deterministic in total but not pool-size-invariant event by event.

pub mod export;
mod metrics;
mod summary;

pub use metrics::{
    metrics, Counter, Gauge, Histogram, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use summary::{SummaryDiff, TraceSummary};

use std::sync::Mutex;
use std::time::Instant;

/// Tracing configuration. The stack takes `Option<TraceConfig>` /
/// `Option<&Recorder>` everywhere, defaulting to `None`; the config
/// only shapes what an *enabled* recorder captures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Capture wall-clock span durations into the [`Event::wall_ns`]
    /// side channel. Never part of the canonical export; turn off for
    /// the cheapest possible enabled path.
    pub wall_clock: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { wall_clock: true }
    }
}

/// What kind of event a stream entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (pushed onto the nesting stack).
    Open,
    /// The innermost open span closed.
    Close,
    /// A point event.
    Instant,
    /// A named measurement of a deterministic quantity.
    Value(i64),
}

impl EventKind {
    /// Canonical tag, as used by the JSON exports.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Open => "open",
            EventKind::Close => "close",
            EventKind::Instant => "instant",
            EventKind::Value(_) => "value",
        }
    }
}

/// One entry of the logical event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Logical sequence number: the primary clock. Contiguous from 0
    /// in stream order.
    pub seq: u64,
    /// Event kind (with the measurement payload for value events).
    pub kind: EventKind,
    /// Event name (the span taxonomy is documented in the README).
    pub name: String,
    /// Deterministic detail text. Close events echo no detail.
    pub detail: String,
    /// Wall-clock side channel (span duration on close events),
    /// excluded from the canonical export and all comparisons.
    pub wall_ns: Option<u64>,
}

/// One open span on a nesting stack: its name (echoed at close) and
/// its start time when wall capture is on.
struct OpenSpan {
    name: String,
    started: Option<Instant>,
}

struct Inner {
    events: Vec<Event>,
    open: Vec<OpenSpan>,
}

/// The trace recorder: an append-only logical event stream plus the
/// span nesting stack. Interior-mutable so a shared `&Recorder` can be
/// threaded through a run; all recording happens on the control thread
/// (parallel work records into [`LocalBuf`]s absorbed afterwards), so
/// the lock is uncontended.
pub struct Recorder {
    cfg: TraceConfig,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Recorder")
            .field("events", &inner.events.len())
            .field("open", &inner.open.len())
            .finish()
    }
}

impl Recorder {
    /// A recorder over a configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        Recorder {
            cfg,
            inner: Mutex::new(Inner {
                events: Vec::new(),
                open: Vec::new(),
            }),
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    fn push(inner: &mut Inner, kind: EventKind, name: String, detail: String, wall: Option<u64>) {
        let seq = inner.events.len() as u64;
        inner.events.push(Event {
            seq,
            kind,
            name,
            detail,
            wall_ns: wall,
        });
    }

    /// Opens a span. Prefer the [`span`] guard helper, which cannot
    /// leave a span open.
    pub fn open(&self, name: &str, detail: String) {
        let started = self.cfg.wall_clock.then(Instant::now);
        let mut inner = self.inner.lock().unwrap();
        Self::push(&mut inner, EventKind::Open, name.to_string(), detail, None);
        inner.open.push(OpenSpan {
            name: name.to_string(),
            started,
        });
    }

    /// Closes the innermost open span.
    ///
    /// # Panics
    ///
    /// Panics when no span is open — an instrumentation bug, never a
    /// data condition.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        let span = inner
            .open
            .pop()
            .expect("Recorder::close without an open span");
        let wall = span.started.map(|t| t.elapsed().as_nanos() as u64);
        Self::push(&mut inner, EventKind::Close, span.name, String::new(), wall);
    }

    /// Records a point event.
    pub fn instant(&self, name: &str, detail: String) {
        let mut inner = self.inner.lock().unwrap();
        Self::push(
            &mut inner,
            EventKind::Instant,
            name.to_string(),
            detail,
            None,
        );
    }

    /// Records a named measurement. The quantity must be deterministic
    /// and pool-size-invariant (candidate speedups, admitted counts —
    /// never global counter readings, which can race).
    pub fn value(&self, name: &str, v: i64, detail: String) {
        let mut inner = self.inner.lock().unwrap();
        Self::push(
            &mut inner,
            EventKind::Value(v),
            name.to_string(),
            detail,
            None,
        );
    }

    /// Number of open (unclosed) spans.
    pub fn open_depth(&self) -> usize {
        self.inner.lock().unwrap().open.len()
    }

    /// A snapshot of the stream so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.clone()
    }

    /// Consumes the recorder and returns the finished stream.
    ///
    /// # Panics
    ///
    /// Panics when spans are still open — an instrumentation bug.
    pub fn finish(self) -> Vec<Event> {
        let inner = self.inner.into_inner().unwrap();
        assert!(
            inner.open.is_empty(),
            "Recorder::finish with {} spans still open",
            inner.open.len()
        );
        inner.events
    }

    /// Absorbs per-item [`LocalBuf`]s back into the stream **in the
    /// order given** — call with the buffers in work-item submission
    /// order (the order `par_map` merges results), never in completion
    /// order. Sequence numbers are assigned here, so the merged stream
    /// is identical at any pool size.
    ///
    /// # Panics
    ///
    /// Panics when a buffer still has open spans.
    pub fn absorb<I>(&self, bufs: I)
    where
        I: IntoIterator<Item = LocalBuf>,
    {
        let mut inner = self.inner.lock().unwrap();
        for buf in bufs {
            assert!(
                buf.stack.is_empty(),
                "LocalBuf absorbed with {} spans still open",
                buf.stack.len()
            );
            for (kind, name, detail, wall) in buf.events {
                Self::push(&mut inner, kind, name, detail, wall);
            }
        }
    }
}

/// A per-work-item event buffer for parallel stages: records with no
/// locking on the worker, then the control thread merges buffers back
/// in submission order via [`Recorder::absorb`]. Spans opened here
/// must be closed here — a buffer is absorbed whole.
#[derive(Debug)]
pub struct LocalBuf {
    wall_clock: bool,
    events: Vec<(EventKind, String, String, Option<u64>)>,
    /// Open stack: span name (echoed at close) and start time.
    stack: Vec<(String, Option<Instant>)>,
}

impl LocalBuf {
    fn new(wall_clock: bool) -> Self {
        LocalBuf {
            wall_clock,
            events: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Opens a span local to this work item.
    pub fn open(&mut self, name: &str, detail: String) {
        let started = self.wall_clock.then(Instant::now);
        self.events
            .push((EventKind::Open, name.to_string(), detail, None));
        self.stack.push((name.to_string(), started));
    }

    /// Closes the innermost open span of this buffer.
    ///
    /// # Panics
    ///
    /// Panics when no span is open in this buffer.
    pub fn close(&mut self) {
        let (name, started) = self
            .stack
            .pop()
            .expect("LocalBuf::close without an open span");
        let wall = started.map(|t| t.elapsed().as_nanos() as u64);
        self.events
            .push((EventKind::Close, name, String::new(), wall));
    }

    /// Records a point event.
    pub fn instant(&mut self, name: &str, detail: String) {
        self.events
            .push((EventKind::Instant, name.to_string(), detail, None));
    }

    /// Records a named measurement (same determinism contract as
    /// [`Recorder::value`]).
    pub fn value(&mut self, name: &str, v: i64, detail: String) {
        self.events
            .push((EventKind::Value(v), name.to_string(), detail, None));
    }
}

/// A guard that closes its span on drop, so control-thread spans are
/// always well-nested. A `None` recorder yields a free no-op guard.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(r) = self.rec {
            r.close();
        }
    }
}

/// Opens a guarded span on an optional recorder. The detail closure is
/// only called (and only allocates) when tracing is enabled.
pub fn span<'a, F: FnOnce() -> String>(
    rec: Option<&'a Recorder>,
    name: &str,
    detail: F,
) -> SpanGuard<'a> {
    if let Some(r) = rec {
        r.open(name, detail());
    }
    SpanGuard { rec }
}

/// Records a point event on an optional recorder; no-op (no
/// allocation, the closure is never called) for `None`.
pub fn instant<F: FnOnce() -> String>(rec: Option<&Recorder>, name: &str, detail: F) {
    if let Some(r) = rec {
        r.instant(name, detail());
    }
}

/// Records a named measurement on an optional recorder; no-op for
/// `None`. The quantity must be deterministic and pool-size-invariant.
pub fn value<F: FnOnce() -> String>(rec: Option<&Recorder>, name: &str, v: i64, detail: F) {
    if let Some(r) = rec {
        r.value(name, v, detail());
    }
}

/// A per-work-item buffer for a parallel stage, or `None` (no
/// allocation) when tracing is disabled. Create inside the `par_map`
/// closure, return it with the item's result, and
/// [`Recorder::absorb`] the buffers in submission order.
pub fn local(rec: Option<&Recorder>) -> Option<LocalBuf> {
    rec.map(|r| LocalBuf::new(r.cfg.wall_clock))
}

/// Checks that a stream is well-formed: contiguous sequence numbers
/// from 0, every close matches the innermost open span's name, and no
/// span is left open at the end.
pub fn well_formed(events: &[Event]) -> bool {
    let mut stack: Vec<&str> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.seq != i as u64 {
            return false;
        }
        match e.kind {
            EventKind::Open => stack.push(&e.name),
            EventKind::Close => match stack.pop() {
                Some(name) if name == e.name => {}
                _ => return false,
            },
            EventKind::Instant | EventKind::Value(_) => {}
        }
    }
    stack.is_empty()
}

/// FNV-1a fingerprint of the canonical (logical, wall-free) rendering
/// of a stream: equal fingerprints ⇔ byte-identical logical streams.
pub fn stream_fingerprint(events: &[Event]) -> u64 {
    looprag_runtime::fnv64(export::to_canonical_json(events).bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_spans_nest() {
        let rec = Recorder::new(TraceConfig::default());
        {
            let _a = span(Some(&rec), "outer", || "o".into());
            instant(Some(&rec), "tick", String::new);
            {
                let _b = span(Some(&rec), "inner", String::new);
                value(Some(&rec), "n", 3, String::new);
            }
        }
        let events = rec.finish();
        assert!(well_formed(&events));
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].kind, EventKind::Open);
        assert_eq!(events[5].name, "outer");
        assert_eq!(events[5].kind, EventKind::Close);
    }

    #[test]
    fn disabled_path_is_noop() {
        let _g = span(None, "x", || unreachable!("detail built while disabled"));
        instant(None, "y", || unreachable!());
        value(None, "z", 1, || unreachable!());
        assert!(local(None).is_none());
    }

    #[test]
    fn absorb_merges_in_submission_order() {
        let rec = Recorder::new(TraceConfig { wall_clock: false });
        let mut bufs: Vec<LocalBuf> = Vec::new();
        for i in 0..3 {
            let mut b = local(Some(&rec)).unwrap();
            b.open("item", format!("{i}"));
            b.instant("work", String::new());
            b.close();
            bufs.push(b);
        }
        // Completion order is irrelevant: absorb takes submission order.
        rec.absorb(bufs);
        let events = rec.finish();
        assert!(well_formed(&events));
        let details: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == EventKind::Open)
            .map(|e| e.detail.as_str())
            .collect();
        assert_eq!(details, ["0", "1", "2"]);
    }

    #[test]
    fn wall_clock_lives_in_the_side_channel() {
        let rec = Recorder::new(TraceConfig { wall_clock: true });
        {
            let _g = span(Some(&rec), "timed", String::new);
        }
        let events = rec.finish();
        assert!(events[1].wall_ns.is_some(), "close should carry wall time");
        // The canonical export must not mention it.
        assert!(!export::to_canonical_json(&events).contains("wall"));
    }

    #[test]
    #[should_panic(expected = "without an open span")]
    fn close_without_open_panics() {
        Recorder::new(TraceConfig::default()).close();
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn absorbing_an_open_buffer_panics() {
        let rec = Recorder::new(TraceConfig::default());
        let mut b = local(Some(&rec)).unwrap();
        b.open("leak", String::new());
        rec.absorb([b]);
    }
}
