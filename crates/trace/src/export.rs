//! Exporters for the logical event stream.
//!
//! * **Canonical JSON** — a byte-stable rendering of the logical
//!   stream (sequence numbers, kinds, names, details; the wall-clock
//!   side channel is excluded by construction). The strict parser
//!   accepts exactly what the writer emits, so
//!   `to_canonical_json(from_canonical_json(s)?) == s` for any
//!   canonical document — the round-trip is byte-exact.
//! * **Chrome `trace_event` JSON** — openable in `chrome://tracing` /
//!   Perfetto. Timestamps are the logical clock (one tick per event),
//!   so the visual layout of a fixed-seed run is identical at any pool
//!   size; wall durations ride along as event args.

use crate::{Event, EventKind};
use std::fmt::Write as _;

/// Canonical-format version, bumped on any grammar change.
pub const CANONICAL_FORMAT_VERSION: u32 = 1;

/// Escapes a string into a JSON string literal (quotes included),
/// appended to `out`. Deterministic: a fixed escape per code point.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the logical stream as canonical JSON. Wall-clock values are
/// excluded: two runs with identical logical streams render to
/// identical bytes regardless of timing or pool size.
pub fn to_canonical_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 48);
    let _ = write!(
        out,
        "{{\"format_version\":{CANONICAL_FORMAT_VERSION},\"events\":["
    );
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seq\":{},\"kind\":\"{}\",\"name\":",
            e.seq,
            e.kind.tag()
        );
        push_json_str(&mut out, &e.name);
        out.push_str(",\"detail\":");
        push_json_str(&mut out, &e.detail);
        if let EventKind::Value(v) = e.kind {
            let _ = write!(out, ",\"value\":{v}");
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// A strict cursor over the canonical grammar.
struct Cursor<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("canonical trace: expected {what} at byte {}", self.pos)
    }

    fn expect(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.fail(&format!("`{lit}`")))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    /// Unsigned decimal integer.
    fn uint(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.fail("a digit"));
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.fail("an integer in range"))
    }

    /// Signed decimal integer.
    fn int(&mut self) -> Result<i64, String> {
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.fail("a digit"));
        }
        let text = std::str::from_utf8(&self.s[start - usize::from(neg)..self.pos])
            .map_err(|_| self.fail("utf-8"))?;
        text.parse().map_err(|_| self.fail("an integer in range"))
    }

    /// A JSON string literal, unescaped.
    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.s[self.pos..])
                .map_err(|_| self.fail("utf-8 string content"))?;
            let mut chars = rest.char_indices();
            let Some((i, c)) = chars.next() else {
                return Err(self.fail("a closing quote"));
            };
            debug_assert_eq!(i, 0);
            match c {
                '"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, esc)) = chars.next() else {
                        return Err(self.fail("an escape character"));
                    };
                    self.pos += 1 + esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("4 hex digits"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.fail("a scalar code point"))?,
                            );
                        }
                        other => return Err(self.fail(&format!("a known escape, not `\\{other}`"))),
                    }
                }
                c => {
                    self.pos += c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.pos == self.s.len()
    }
}

/// Parses a canonical document back into events. Strict by design: the
/// grammar is exactly the writer's output (fixed field order, no
/// whitespace), which is what makes the round-trip byte-exact.
///
/// # Errors
///
/// Returns a positioned diagnostic for any deviation from the
/// canonical grammar (including sequence numbers out of order).
pub fn from_canonical_json(s: &str) -> Result<Vec<Event>, String> {
    let mut c = Cursor::new(s);
    c.expect(&format!(
        "{{\"format_version\":{CANONICAL_FORMAT_VERSION},\"events\":["
    ))?;
    let mut events = Vec::new();
    if c.peek() != Some(b']') {
        loop {
            c.expect("{\"seq\":")?;
            let seq = c.uint()?;
            if seq != events.len() as u64 {
                return Err(format!(
                    "canonical trace: seq {seq} where {} was expected",
                    events.len()
                ));
            }
            c.expect(",\"kind\":")?;
            let kind_tag = c.string()?;
            c.expect(",\"name\":")?;
            let name = c.string()?;
            c.expect(",\"detail\":")?;
            let detail = c.string()?;
            let kind = match kind_tag.as_str() {
                "open" => EventKind::Open,
                "close" => EventKind::Close,
                "instant" => EventKind::Instant,
                "value" => {
                    c.expect(",\"value\":")?;
                    EventKind::Value(c.int()?)
                }
                other => return Err(format!("canonical trace: unknown kind `{other}`")),
            };
            c.expect("}")?;
            events.push(Event {
                seq,
                kind,
                name,
                detail,
                wall_ns: None,
            });
            if c.peek() == Some(b',') {
                c.pos += 1;
            } else {
                break;
            }
        }
    }
    c.expect("]}")?;
    if !c.done() {
        return Err(c.fail("end of document"));
    }
    Ok(events)
}

/// Renders the stream as Chrome `trace_event` JSON
/// (`{"traceEvents":[...]}`), for `chrome://tracing` or Perfetto.
///
/// The `ts` field is the **logical clock** (one microsecond tick per
/// event), so the layout of a fixed-seed run is pool-size-invariant;
/// wall-clock durations, when captured, ride along as `args.wall_ns`.
/// Spans map to `B`/`E` pairs, point events to `i`, measurements to
/// `C` counter samples.
pub fn to_chrome_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match e.kind {
            EventKind::Open => "B",
            EventKind::Close => "E",
            EventKind::Instant => "i",
            EventKind::Value(_) => "C",
        };
        out.push_str("{\"name\":");
        push_json_str(&mut out, &e.name);
        let _ = write!(
            out,
            ",\"cat\":\"looprag\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":1",
            e.seq
        );
        if e.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        let mut first = true;
        if let EventKind::Value(v) = e.kind {
            let _ = write!(out, "\"value\":{v}");
            first = false;
        }
        if !e.detail.is_empty() {
            if !first {
                out.push(',');
            }
            out.push_str("\"detail\":");
            push_json_str(&mut out, &e.detail);
            first = false;
        }
        if let Some(w) = e.wall_ns {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "\"wall_ns\":{w}");
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        let rec = crate::Recorder::new(crate::TraceConfig { wall_clock: false });
        rec.open(
            "stage",
            "with \"quotes\", a \\ and a\nnewline\tplus ünïcode".into(),
        );
        rec.value("count", -42, "ctl\u{1}char".into());
        rec.instant("tick", String::new());
        rec.close();
        rec.finish()
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let events = sample();
        let json = to_canonical_json(&events);
        let back = from_canonical_json(&json).expect("canonical output must parse");
        assert_eq!(back, events);
        assert_eq!(to_canonical_json(&back), json);
    }

    #[test]
    fn empty_stream_round_trips() {
        let json = to_canonical_json(&[]);
        assert_eq!(json, "{\"format_version\":1,\"events\":[]}");
        assert_eq!(from_canonical_json(&json).unwrap(), Vec::<Event>::new());
    }

    #[test]
    fn parser_rejects_drift() {
        let json = to_canonical_json(&sample());
        // Any byte-level deviation from canonical form is an error.
        assert!(from_canonical_json(&json.replace("[{", "[ {")).is_err());
        assert!(from_canonical_json(&json.replace("\"seq\":1", "\"seq\":7")).is_err());
        assert!(from_canonical_json(&format!("{json} ")).is_err());
    }

    #[test]
    fn chrome_export_has_balanced_phases() {
        let chrome = to_chrome_json(&sample());
        assert_eq!(chrome.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(chrome.matches("\"ph\":\"E\"").count(), 1);
        assert_eq!(chrome.matches("\"ph\":\"C\"").count(), 1);
        assert_eq!(chrome.matches("\"ph\":\"i\"").count(), 1);
    }
}
