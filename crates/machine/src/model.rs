//! The analytical+simulated performance model (reference path).
//!
//! [`estimate_cost_reference`] walks a program's loop nest at
//! *cost-model* parameter scales, feeding every array access through a
//! two-level cache simulator and charging ALU and loop-header overhead,
//! then applies:
//!
//! * **vectorization** — innermost loops that are dependence-free (or
//!   clean reductions) with unit-stride accesses have their ALU and
//!   L1-hit cycles divided by the machine's effective vector width;
//!   `min`/`max`/`floord` bounds reduce the efficiency (prologue/epilogue
//!   effects), which is how over-tiled short loops genuinely lose;
//! * **parallelism** — `#pragma omp parallel for` loops have their body
//!   cycles divided by `min(threads, trip_count)` plus a fork/join charge
//!   per entry;
//! * **loop overhead** — a per-header-iteration charge that makes deep
//!   tile nests around tiny iteration spaces a measurable cost.
//!
//! The result stands in for the paper's wall-clock measurements on the
//! 2×24-core EPYC testbed; the EXPERIMENTS harness reports speedups as
//! ratios of estimated cycles.
//!
//! This module is the *reference* implementation: a straight-line
//! simulation with no caching. The production entry point is
//! [`crate::estimate_cost`], the [`crate::CostEngine`]-backed path that
//! is pinned bit-for-bit against this one (shared lowering lives here;
//! the memoizing walker lives in `engine`).

use crate::cache::{CacheGeometry, Hierarchy, ServiceLevel};
use looprag_dependence::{analyze_with, AnalysisConfig, DependenceSet};
use looprag_ir::{loop_paths, node_at, Bound, Node, Program};
use std::collections::HashMap;
use std::fmt;

/// A machine/compiler configuration for cost estimation.
///
/// The distinct base-compiler constructors model how much performance the
/// *unoptimized* build already extracts, which shrinks or widens the
/// headroom an optimizer can claim (the paper's GCC/Clang/ICX columns).
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Display name.
    pub name: String,
    /// Worker threads available to parallel loops.
    pub threads: u32,
    /// Effective vector speedup for clean unit-stride innermost loops.
    pub vector_width: f64,
    /// Multiplier on vector efficiency when innermost bounds carry
    /// min/max/floord (tile prologue/epilogue effects).
    pub vector_messy_factor: f64,
    /// Multiplier on vector efficiency for reduction loops.
    pub reduction_factor: f64,
    /// L1 geometry.
    pub l1: CacheGeometry,
    /// L2 geometry.
    pub l2: CacheGeometry,
    /// L1 hit latency (cycles).
    pub lat_l1: u64,
    /// L2 hit latency (cycles).
    pub lat_l2: u64,
    /// Memory latency (cycles).
    pub lat_mem: u64,
    /// Cycles charged per loop-header iteration.
    pub loop_overhead: u64,
    /// Cycles charged per parallel-region entry (fork/join).
    pub parallel_spawn_cycles: u64,
    /// Fraction of ideal scaling a parallel loop achieves (load
    /// imbalance, memory-bandwidth sharing).
    pub parallel_efficiency: f64,
    /// Maximum statement instances to simulate.
    pub instance_budget: u64,
}

impl MachineConfig {
    fn base(name: &str) -> Self {
        MachineConfig {
            name: name.to_string(),
            threads: 48,
            vector_width: 4.0,
            vector_messy_factor: 0.5,
            reduction_factor: 0.75,
            l1: CacheGeometry {
                size_bytes: 4 * 1024,
                line_bytes: 64,
                assoc: 4,
            },
            l2: CacheGeometry {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                assoc: 8,
            },
            lat_l1: 4,
            lat_l2: 14,
            lat_mem: 120,
            loop_overhead: 2,
            parallel_spawn_cycles: 3000,
            parallel_efficiency: 0.75,
            instance_budget: 120_000_000,
        }
    }

    /// GCC 15 `-O3 -fopenmp`-like configuration.
    pub fn gcc() -> Self {
        Self::base("gcc")
    }

    /// Clang 20 `-O3 -fopenmp`-like configuration (slightly better
    /// vectorizer than GCC).
    pub fn clang() -> Self {
        let mut c = Self::base("clang");
        c.vector_width = 4.4;
        c
    }

    /// ICX `-O3 -qopenmp -xHost`-like configuration (aggressive
    /// vectorizer, so less headroom for source-level optimizers).
    pub fn icx() -> Self {
        let mut c = Self::base("icx");
        c.vector_width = 5.2;
        c.vector_messy_factor = 0.65;
        c
    }

    /// A canonical fingerprint covering **every** field, used (together
    /// with the candidate's printed form) as the [`crate::CostEngine`]
    /// cache key. Floats are rendered via their exact bit patterns, so
    /// two configs collide only when every estimate they could produce
    /// is bitwise identical.
    pub fn fingerprint(&self) -> String {
        // Exhaustive destructuring: adding a field without folding it
        // into the fingerprint is a compile error, so a new knob can
        // never silently alias cache entries.
        let MachineConfig {
            name,
            threads,
            vector_width,
            vector_messy_factor,
            reduction_factor,
            l1,
            l2,
            lat_l1,
            lat_l2,
            lat_mem,
            loop_overhead,
            parallel_spawn_cycles,
            parallel_efficiency,
            instance_budget,
        } = self;
        format!(
            "{name};{threads};{:016x};{:016x};{:016x};{}/{}/{};{}/{}/{};{lat_l1};{lat_l2};{lat_mem};{loop_overhead};{parallel_spawn_cycles};{:016x};{instance_budget}",
            vector_width.to_bits(),
            vector_messy_factor.to_bits(),
            reduction_factor.to_bits(),
            l1.size_bytes,
            l1.line_bytes,
            l1.assoc,
            l2.size_bytes,
            l2.line_bytes,
            l2.assoc,
            parallel_efficiency.to_bits(),
        )
    }
}

/// Cost components, in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostVec {
    /// Arithmetic cycles.
    pub alu: f64,
    /// L1 hit cycles.
    pub l1: f64,
    /// L2 hit cycles.
    pub l2: f64,
    /// Memory access cycles.
    pub mem: f64,
    /// Loop-header and fork/join overhead cycles.
    pub ovh: f64,
}

impl CostVec {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.alu + self.l1 + self.l2 + self.mem + self.ovh
    }

    pub(crate) fn add(&mut self, other: CostVec) {
        self.alu += other.alu;
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.mem += other.mem;
        self.ovh += other.ovh;
    }

    pub(crate) fn scale_all(&mut self, f: f64) {
        self.alu *= f;
        self.l1 *= f;
        self.l2 *= f;
        self.mem *= f;
        self.ovh *= f;
    }
}

/// Result of a cost estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Effective cycles after vector/parallel adjustments.
    pub cycles: f64,
    /// Component breakdown (post-adjustment).
    pub breakdown: CostVec,
    /// Statement instances simulated.
    pub instances: u64,
    /// L1 hits observed.
    pub l1_hits: u64,
    /// L2 hits observed.
    pub l2_hits: u64,
    /// Memory-level accesses observed.
    pub mem_accesses: u64,
    /// Iterator names of loops the model vectorized.
    pub vectorized: Vec<String>,
    /// Number of parallel-region entries charged.
    pub parallel_entries: u64,
}

impl CostReport {
    /// The report for a program whose cost could not be estimated:
    /// infinite cycles and empty counters, so it can never rank above
    /// (or within any `slow_factor` of) a real measurement.
    pub fn unreachable() -> CostReport {
        CostReport {
            cycles: f64::INFINITY,
            breakdown: CostVec::default(),
            instances: 0,
            l1_hits: 0,
            l2_hits: 0,
            mem_accesses: 0,
            vectorized: Vec::new(),
            parallel_entries: 0,
        }
    }

    /// Speedup of `opt` relative to this baseline report.
    ///
    /// Returns 0 when the optimized cycle count is zero, negative, NaN
    /// or infinite (an [`unreachable`](CostReport::unreachable)
    /// candidate), so a degenerate report can never inject `inf`/`NaN`
    /// into rankings.
    pub fn speedup_of(&self, opt: &CostReport) -> f64 {
        if !opt.cycles.is_finite() || opt.cycles <= 0.0 {
            return 0.0;
        }
        self.cycles / opt.cycles
    }
}

/// Cost-estimation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// The instance budget was exhausted — treated as an execution timeout
    /// by the experiment harness.
    InstanceBudget,
    /// A bound referenced an unbound symbol.
    Unbound(String),
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InstanceBudget => write!(f, "cost model instance budget exhausted"),
            CostError::Unbound(s) => write!(f, "unbound symbol '{s}' in cost model"),
        }
    }
}

impl std::error::Error for CostError {}

/// How a loop is vectorized, precomputed per innermost loop.
#[derive(Debug, Clone, Copy, PartialEq)]
struct VecInfo {
    factor: f64,
}

// ---------------------------------------------------------------------
// Lowered cost IR: symbols resolved to iterator stack slots, parameters
// folded into constants, and subscripts collapsed into a single linear
// form per access. This keeps the hot simulation loop free of string
// hashing and map lookups. `pub(crate)` — the memoizing engine walks
// the exact same lowered tree, so the two paths cannot diverge on what
// they simulate.
// ---------------------------------------------------------------------

/// A linear form `constant + sum(coeff * iters[slot])`.
#[derive(Debug, Clone)]
pub(crate) struct LinForm {
    pub(crate) constant: i64,
    pub(crate) terms: Vec<(usize, i64)>,
}

impl LinForm {
    #[inline]
    pub(crate) fn eval(&self, iters: &[i64]) -> i64 {
        let mut acc = self.constant;
        for (slot, coeff) in &self.terms {
            acc += coeff * iters[*slot];
        }
        acc
    }
}

/// A lowered loop bound.
#[derive(Debug, Clone)]
pub(crate) enum LBound {
    Lin(LinForm),
    Min(Box<LBound>, Box<LBound>),
    Max(Box<LBound>, Box<LBound>),
    FloorDiv(Box<LBound>, i64),
}

impl LBound {
    pub(crate) fn eval(&self, iters: &[i64]) -> i64 {
        match self {
            LBound::Lin(f) => f.eval(iters),
            LBound::Min(a, b) => a.eval(iters).min(b.eval(iters)),
            LBound::Max(a, b) => a.eval(iters).max(b.eval(iters)),
            LBound::FloorDiv(e, c) => e.eval(iters).div_euclid(*c),
        }
    }
}

/// A lowered access: byte base plus a linear element index, clamped to
/// the allocation (the cost model measures locality, not correctness).
#[derive(Debug, Clone)]
pub(crate) struct LAccess {
    pub(crate) base: u64,
    pub(crate) linear: LinForm,
    pub(crate) max_flat: i64,
}

#[derive(Debug, Clone)]
pub(crate) enum LNode {
    Loop {
        slot: usize,
        lb: LBound,
        ub: LBound,
        inclusive: bool,
        step: i64,
        parallel: bool,
        vec_factor: Option<f64>,
        header_ovh: f64,
        /// True when nothing under this loop — subscripts, `if`
        /// conditions or nested bounds — references the loop's own
        /// iterator slot. For such loops every iteration replays the
        /// same address stream over whatever cache state it starts
        /// from, so a recurring simulator state at an iteration
        /// boundary implies exact periodicity; the engine's
        /// steady-state memoizer is only engaged here.
        body_invariant: bool,
        body: Vec<LNode>,
    },
    If {
        conds: Vec<(LinForm, looprag_ir::CmpOp, LinForm)>,
        then: Vec<LNode>,
    },
    Stmt {
        alu: f64,
        accesses: Vec<LAccess>,
    },
}

/// True when any lowered node in `nodes` references iterator slot
/// `slot` — in an access subscript, an `if` condition or a nested loop
/// bound. Nested loops occupy strictly higher slots (the candidate's
/// slot stays on the lowering stack), so a match is unambiguous.
fn references_slot(nodes: &[LNode], slot: usize) -> bool {
    fn lin_uses(f: &LinForm, slot: usize) -> bool {
        f.terms.iter().any(|(s, _)| *s == slot)
    }
    fn bound_uses(b: &LBound, slot: usize) -> bool {
        match b {
            LBound::Lin(f) => lin_uses(f, slot),
            LBound::Min(a, c) | LBound::Max(a, c) => bound_uses(a, slot) || bound_uses(c, slot),
            LBound::FloorDiv(e, _) => bound_uses(e, slot),
        }
    }
    nodes.iter().any(|n| match n {
        LNode::Stmt { accesses, .. } => accesses.iter().any(|a| lin_uses(&a.linear, slot)),
        LNode::If { conds, then } => {
            conds
                .iter()
                .any(|(l, _, r)| lin_uses(l, slot) || lin_uses(r, slot))
                || references_slot(then, slot)
        }
        LNode::Loop { lb, ub, body, .. } => {
            bound_uses(lb, slot) || bound_uses(ub, slot) || references_slot(body, slot)
        }
    })
}

struct Lowerer<'a> {
    params: &'a HashMap<String, i64>,
    bases: &'a HashMap<String, u64>,
    extents: &'a HashMap<String, Vec<i64>>,
    vec_info: &'a HashMap<Vec<usize>, VecInfo>,
    slots: Vec<String>,
    errors: Vec<String>,
}

impl Lowerer<'_> {
    fn lin(&mut self, e: &looprag_ir::AffineExpr) -> LinForm {
        let mut constant = e.constant_term();
        let mut terms = Vec::new();
        for (sym, coeff) in e.iter_terms() {
            if let Some(slot) = self.slots.iter().rposition(|s| s == sym) {
                terms.push((slot, coeff));
            } else if let Some(v) = self.params.get(sym) {
                constant += coeff * v;
            } else {
                self.errors.push(sym.to_string());
            }
        }
        LinForm { constant, terms }
    }

    fn bound(&mut self, b: &Bound) -> LBound {
        match b {
            Bound::Affine(e) => LBound::Lin(self.lin(e)),
            Bound::Min(a, c) => LBound::Min(Box::new(self.bound(a)), Box::new(self.bound(c))),
            Bound::Max(a, c) => LBound::Max(Box::new(self.bound(a)), Box::new(self.bound(c))),
            Bound::FloorDiv(e, c) => LBound::FloorDiv(Box::new(self.bound(e)), *c),
        }
    }

    fn access(&mut self, a: &looprag_ir::Access) -> Option<LAccess> {
        let base = *self.bases.get(&a.array)?;
        let extents = self.extents.get(&a.array)?.clone();
        // Collapse multi-dimensional subscripts into one linear element
        // index using the (constant) row strides.
        let mut linear = LinForm {
            constant: 0,
            terms: Vec::new(),
        };
        let mut row = 1i64;
        for (dim, ext) in a.indexes.iter().zip(&extents).rev() {
            let f = self.lin(dim);
            linear.constant += f.constant * row;
            for (slot, coeff) in f.terms {
                if let Some(t) = linear.terms.iter_mut().find(|(s, _)| *s == slot) {
                    t.1 += coeff * row;
                } else {
                    linear.terms.push((slot, coeff * row));
                }
            }
            row *= ext;
        }
        let elems: i64 = extents.iter().product::<i64>().max(1);
        Some(LAccess {
            base,
            linear,
            max_flat: elems - 1,
        })
    }

    fn lower(&mut self, nodes: &[Node], path: &mut Vec<usize>, ovh: f64) -> Vec<LNode> {
        let mut out = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            path.push(i);
            match n {
                Node::Stmt(s) => {
                    let mut accesses = Vec::new();
                    let mut reads = Vec::new();
                    s.rhs.collect_reads(&mut reads);
                    for r in reads {
                        if let Some(a) = self.access(r) {
                            accesses.push(a);
                        }
                    }
                    if s.op.reads_target() {
                        if let Some(a) = self.access(&s.lhs) {
                            accesses.push(a);
                        }
                    }
                    if let Some(a) = self.access(&s.lhs) {
                        accesses.push(a);
                    }
                    out.push(LNode::Stmt {
                        alu: (s.rhs.alu_cost() + 1) as f64,
                        accesses,
                    });
                }
                Node::If { conds, then } => {
                    let lconds = conds
                        .iter()
                        .map(|c| (self.lin(&c.lhs), c.op, self.lin(&c.rhs)))
                        .collect();
                    let then = self.lower(then, path, ovh);
                    out.push(LNode::If {
                        conds: lconds,
                        then,
                    });
                }
                Node::Loop(l) => {
                    let lb = self.bound(&l.lb);
                    let ub = self.bound(&l.ub);
                    self.slots.push(l.iter.clone());
                    let slot = self.slots.len() - 1;
                    let body = self.lower(&l.body, path, ovh);
                    self.slots.pop();
                    out.push(LNode::Loop {
                        slot,
                        lb,
                        ub,
                        inclusive: l.ub_inclusive,
                        step: l.step,
                        parallel: l.parallel,
                        vec_factor: self.vec_info.get(path.as_slice()).map(|v| v.factor),
                        header_ovh: ovh,
                        body_invariant: !references_slot(&body, slot),
                        body,
                    });
                }
            }
            path.pop();
        }
        out
    }
}

pub(crate) struct Model<'a> {
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) iters: Vec<i64>,
    pub(crate) caches: Hierarchy,
    pub(crate) instances: u64,
    pub(crate) l1_hits: u64,
    pub(crate) l2_hits: u64,
    pub(crate) mem_accesses: u64,
    pub(crate) parallel_entries: u64,
    pub(crate) in_parallel: bool,
}

impl<'a> Model<'a> {
    pub(crate) fn new(cfg: &'a MachineConfig) -> Model<'a> {
        Model {
            cfg,
            iters: Vec::new(),
            caches: Hierarchy::new(cfg.l1.clone(), cfg.l2.clone()),
            instances: 0,
            l1_hits: 0,
            l2_hits: 0,
            mem_accesses: 0,
            parallel_entries: 0,
            in_parallel: false,
        }
    }

    /// Packages the walked breakdown into the public report.
    pub(crate) fn report(&self, breakdown: CostVec, vectorized: Vec<String>) -> CostReport {
        CostReport {
            cycles: breakdown.total(),
            breakdown,
            instances: self.instances,
            l1_hits: self.l1_hits,
            l2_hits: self.l2_hits,
            mem_accesses: self.mem_accesses,
            vectorized,
            parallel_entries: self.parallel_entries,
        }
    }

    #[inline]
    pub(crate) fn charge_access(&mut self, acc: &LAccess, cost: &mut CostVec) {
        let flat = acc.linear.eval(&self.iters).clamp(0, acc.max_flat);
        let addr = acc.base + flat as u64 * 8;
        match self.caches.access(addr) {
            ServiceLevel::L1 => {
                self.l1_hits += 1;
                cost.l1 += self.cfg.lat_l1 as f64;
            }
            ServiceLevel::L2 => {
                self.l2_hits += 1;
                cost.l2 += self.cfg.lat_l2 as f64;
            }
            ServiceLevel::Memory => {
                self.mem_accesses += 1;
                cost.mem += self.cfg.lat_mem as f64;
            }
        }
    }

    pub(crate) fn visit_nodes(&mut self, nodes: &[LNode]) -> Result<CostVec, CostError> {
        let mut cost = CostVec::default();
        for n in nodes {
            cost.add(self.visit_node(n)?);
        }
        Ok(cost)
    }

    pub(crate) fn visit_node(&mut self, n: &LNode) -> Result<CostVec, CostError> {
        match n {
            LNode::Stmt { alu, accesses } => {
                if self.instances >= self.cfg.instance_budget {
                    return Err(CostError::InstanceBudget);
                }
                self.instances += 1;
                let mut cost = CostVec::default();
                cost.alu += alu;
                for a in accesses {
                    self.charge_access(a, &mut cost);
                }
                Ok(cost)
            }
            LNode::If { conds, then } => {
                let mut cost = CostVec::default();
                cost.alu += conds.len() as f64;
                let taken = conds
                    .iter()
                    .all(|(l, op, r)| op.eval(l.eval(&self.iters), r.eval(&self.iters)));
                if taken {
                    cost.add(self.visit_nodes(then)?);
                }
                Ok(cost)
            }
            LNode::Loop {
                slot,
                lb,
                ub,
                inclusive,
                step,
                parallel,
                vec_factor,
                header_ovh,
                body_invariant: _,
                body,
            } => {
                let lbv = lb.eval(&self.iters);
                let mut ubv = ub.eval(&self.iters);
                if !inclusive {
                    ubv -= 1;
                }
                let mut cost = CostVec::default();
                cost.ovh += header_ovh;
                if ubv < lbv {
                    return Ok(cost);
                }
                let trips = ((ubv - lbv) / step + 1) as u64;
                let parallel_here = *parallel && !self.in_parallel;
                if parallel_here {
                    self.in_parallel = true;
                    self.parallel_entries += 1;
                }
                while self.iters.len() <= *slot {
                    self.iters.push(0);
                }
                let mut body_cost = CostVec::default();
                let mut v = lbv;
                let mut res = Ok(());
                while v <= ubv {
                    self.iters[*slot] = v;
                    body_cost.ovh += header_ovh;
                    match self.visit_nodes(body) {
                        Ok(c) => body_cost.add(c),
                        Err(e) => {
                            res = Err(e);
                            break;
                        }
                    }
                    v += step;
                }
                if parallel_here {
                    self.in_parallel = false;
                }
                res?;
                if let Some(factor) = vec_factor {
                    body_cost.alu /= factor;
                    body_cost.l1 /= factor;
                    body_cost.ovh /= factor;
                }
                if parallel_here {
                    let ideal = (self.cfg.threads as f64).min(trips as f64);
                    let p_eff = (ideal * self.cfg.parallel_efficiency).max(1.0);
                    body_cost.scale_all(1.0 / p_eff);
                    body_cost.ovh += self.cfg.parallel_spawn_cycles as f64;
                }
                cost.add(body_cost);
                Ok(cost)
            }
        }
    }
}

/// True when the loop at `path` contains no nested loop.
fn is_innermost(p: &Program, path: &[usize]) -> bool {
    fn has_loop(nodes: &[Node]) -> bool {
        nodes.iter().any(|n| match n {
            Node::Loop(_) => true,
            Node::If { then, .. } => has_loop(then),
            Node::Stmt(_) => false,
        })
    }
    match node_at(&p.body, path) {
        Some(Node::Loop(l)) => !has_loop(&l.body),
        _ => false,
    }
}

fn stmts_under<'a>(n: &'a Node, out: &mut Vec<&'a looprag_ir::Statement>) {
    n.for_each_stmt(&mut |s| out.push(s));
}

/// Element stride of `acc` with respect to iterator `iter`, under the
/// given extents: the change in flattened index per unit step of `iter`.
fn stride_of(acc: &looprag_ir::Access, iter: &str, extents: &[i64]) -> i64 {
    let mut stride = 0i64;
    let mut row = 1i64;
    for (dim, ext) in acc.indexes.iter().zip(extents).rev() {
        stride += dim.coeff(iter) * row;
        row *= ext;
    }
    stride
}

fn bound_is_messy(b: &Bound) -> bool {
    !matches!(b, Bound::Affine(_))
}

/// Decides the vectorization factor of each innermost loop.
fn vectorization_map(
    p: &Program,
    deps: &DependenceSet,
    extents: &HashMap<String, Vec<i64>>,
    cfg: &MachineConfig,
) -> HashMap<Vec<usize>, VecInfo> {
    let mut out = HashMap::new();
    let mut accs: Vec<&looprag_ir::Access> = Vec::new();
    for path in loop_paths(&p.body) {
        if !is_innermost(p, &path) {
            continue;
        }
        let Some(node @ Node::Loop(l)) = node_at(&p.body, &path) else {
            continue;
        };
        // The loop's statements, collected once and shared by the
        // reduction and stride checks below.
        let mut stmts = Vec::new();
        stmts_under(node, &mut stmts);
        // Legality: dependence-free at this level, or a clean reduction
        // (every dependence carried here is a statement self-dependence on
        // a target invariant in the loop iterator).
        let carried: Vec<_> = deps.carried_by(&path).collect();
        let mut reduction = false;
        if !carried.is_empty() {
            let all_self_reductions = carried.iter().all(|d| {
                d.src == d.dst
                    && stmts.iter().any(|s| {
                        s.id == d.src
                            && s.op.reads_target()
                            && !s.lhs.indexes.iter().any(|e| e.uses(&l.iter))
                    })
            });
            if !all_self_reductions {
                continue;
            }
            reduction = true;
        }
        // Stride: every access must be unit-stride or invariant.
        let mut clean = true;
        for s in &stmts {
            accs.clear();
            s.rhs.collect_reads(&mut accs);
            if s.op.reads_target() {
                accs.push(&s.lhs);
            }
            accs.push(&s.lhs);
            for a in &accs {
                let Some(ext) = extents.get(&a.array) else {
                    continue;
                };
                let st = stride_of(a, &l.iter, ext);
                if st.abs() > 1 {
                    clean = false;
                }
            }
        }
        if !clean {
            continue;
        }
        let mut factor = cfg.vector_width;
        if bound_is_messy(&l.lb) || bound_is_messy(&l.ub) {
            factor = 1.0 + (factor - 1.0) * cfg.vector_messy_factor;
        }
        if reduction {
            factor = 1.0 + (factor - 1.0) * cfg.reduction_factor;
        }
        if factor > 1.2 {
            out.insert(path, VecInfo { factor });
        }
    }
    out
}

/// The dependence analysis the cost model runs when the caller has none
/// to share: the exact configuration of
/// `looprag_search::analyze_for_search`, which is what makes dependence
/// sets interchangeable between the search's legality queries and cost
/// estimation.
pub(crate) fn cost_analysis(p: &Program) -> DependenceSet {
    analyze_with(
        p,
        &AnalysisConfig {
            param_cap: looprag_ir::adaptive_sampling_cap(p, 8, 3_000_000.0),
            instance_budget: 4_000_000,
        },
    )
}

/// A program lowered for cost simulation: the slot-indexed cost IR plus
/// the names of the loops the model vectorized.
pub(crate) struct Prepared {
    pub(crate) lowered: Vec<LNode>,
    pub(crate) vectorized: Vec<String>,
}

/// Shared front half of both cost paths: array layout, vectorization
/// decisions (from `deps`) and lowering to the slot-indexed cost IR.
pub(crate) fn lower_for_cost(
    p: &Program,
    cfg: &MachineConfig,
    deps: &DependenceSet,
) -> Result<Prepared, CostError> {
    // Cost estimation runs at the program's own declared parameter values;
    // benchmark kernels are authored at simulation-friendly scales, and the
    // original/optimized pair must be compared at identical sizes.
    let params: HashMap<String, i64> = p.params.iter().map(|d| (d.name.clone(), d.value)).collect();
    // Array layout: sequential base addresses, line-aligned.
    let mut bases = HashMap::new();
    let mut extents = HashMap::new();
    let mut next_base = 0u64;
    for a in &p.arrays {
        let ext: Vec<i64> = a
            .dims
            .iter()
            .map(|d| d.eval(&|s| params.get(s).copied()).unwrap_or(1).max(1))
            .collect();
        let elems: i64 = ext.iter().product::<i64>().max(1);
        bases.insert(a.name.clone(), next_base);
        extents.insert(a.name.clone(), ext);
        let bytes = (elems as u64 * 8).div_ceil(64) * 64;
        next_base += bytes + 64;
    }

    let vec_info = vectorization_map(p, deps, &extents, cfg);
    // Source (pre-order path) order, NOT map order: `HashMap` iteration
    // varies per instance, and a report served from the cost cache must
    // be byte-identical to one recomputed from scratch.
    let mut vec_paths: Vec<&Vec<usize>> = vec_info.keys().collect();
    vec_paths.sort();
    let vectorized: Vec<String> = vec_paths
        .into_iter()
        .filter_map(|path| match node_at(&p.body, path) {
            Some(Node::Loop(l)) => Some(l.iter.clone()),
            _ => None,
        })
        .collect();

    // Lower to the slot-indexed cost IR.
    let mut lowerer = Lowerer {
        params: &params,
        bases: &bases,
        extents: &extents,
        vec_info: &vec_info,
        slots: Vec::new(),
        errors: Vec::new(),
    };
    let mut path = Vec::new();
    let lowered = lowerer.lower(&p.body, &mut path, cfg.loop_overhead as f64);
    if let Some(sym) = lowerer.errors.into_iter().next() {
        return Err(CostError::Unbound(sym));
    }
    Ok(Prepared {
        lowered,
        vectorized,
    })
}

/// Estimates the cost of running `p` on `cfg`, at cost-model scales —
/// the naive reference path: a fresh dependence analysis and a
/// straight-line per-access simulation, no caching of any kind.
///
/// The production entry point is [`crate::estimate_cost`], which is
/// pinned bit-for-bit against this function (tests and
/// `perf_snapshot --costmodel` hard-assert the pin over the whole
/// suite).
///
/// # Errors
///
/// Returns [`CostError::InstanceBudget`] when the simulated instance
/// budget is exhausted (the harness reports this as a timeout) and
/// [`CostError::Unbound`] for malformed programs.
pub fn estimate_cost_reference(p: &Program, cfg: &MachineConfig) -> Result<CostReport, CostError> {
    let deps = cost_analysis(p);
    let prepared = lower_for_cost(p, cfg, &deps)?;
    let mut model = Model::new(cfg);
    let breakdown = model.visit_nodes(&prepared.lowered)?;
    Ok(model.report(breakdown, prepared.vectorized))
}

#[cfg(test)]
mod tests {
    use super::*;
    use looprag_ir::compile;
    use looprag_transform::{parallelize, tile_band};

    fn cost(src: &str) -> CostReport {
        let p = compile(src, "t").unwrap();
        estimate_cost_reference(&p, &MachineConfig::gcc()).unwrap()
    }

    #[test]
    fn parallel_loop_is_cheaper() {
        let seq = "param N = 4096;\narray A[N];\narray B[N];\nout A;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) A[i] = B[i] * 2.0;\n#pragma endscop\n";
        let par = seq.replace("#pragma scop\n", "#pragma scop\n#pragma omp parallel for\n");
        let c_seq = cost(seq);
        let c_par = cost(&par);
        assert!(
            c_par.cycles < c_seq.cycles / 4.0,
            "parallel {} vs seq {}",
            c_par.cycles,
            c_seq.cycles
        );
        assert_eq!(c_par.parallel_entries, 1);
    }

    #[test]
    fn unit_stride_loop_vectorizes_but_strided_does_not() {
        let unit = cost(
            "param N = 4096;\narray A[N];\narray B[N];\nout A;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) A[i] = B[i] * 2.0;\n#pragma endscop\n",
        );
        assert_eq!(unit.vectorized, vec!["i".to_string()]);
        let strided = cost(
            "param N = 64;\narray A[N][N];\narray B[N][N];\nout A;\n#pragma scop\nfor (j = 0; j <= N - 1; j++) for (i = 0; i <= N - 1; i++) A[i][j] = B[i][j] * 2.0;\n#pragma endscop\n",
        );
        assert!(strided.vectorized.is_empty());
    }

    #[test]
    fn recurrence_does_not_vectorize_but_reduction_does() {
        let rec = cost(
            "param N = 4096;\narray A[N];\nout A;\n#pragma scop\nfor (i = 1; i <= N - 1; i++) A[i] = A[i - 1] + 1.0;\n#pragma endscop\n",
        );
        assert!(rec.vectorized.is_empty());
        let red = cost(
            "param N = 64;\nparam M = 64;\ndouble s;\narray B[M];\nout B;\n#pragma scop\nfor (k = 0; k <= M - 1; k++) s += B[k];\n#pragma endscop\n",
        );
        assert_eq!(red.vectorized, vec!["k".to_string()]);
    }

    #[test]
    fn interchange_fixes_column_major_locality() {
        // Column-major traversal misses every access; row-major hits.
        let bad = cost(
            "param N = 1024;\nparam M = 1024;\narray A[N][M];\nout A;\n#pragma scop\nfor (j = 0; j <= M - 1; j++) for (i = 0; i <= N - 1; i++) A[i][j] = A[i][j] + 1.0;\n#pragma endscop\n",
        );
        let good = cost(
            "param N = 1024;\nparam M = 1024;\narray A[N][M];\nout A;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) for (j = 0; j <= M - 1; j++) A[i][j] = A[i][j] + 1.0;\n#pragma endscop\n",
        );
        assert!(
            good.cycles * 1.5 < bad.cycles,
            "good {} vs bad {}",
            good.cycles,
            bad.cycles
        );
        assert!(good.mem_accesses < bad.mem_accesses);
    }

    #[test]
    fn tiling_helps_large_reuse_kernels() {
        let src = "param N = 128;\narray C[N][N];\narray A[N][N];\narray B[N][N];\nout C;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) for (j = 0; j <= N - 1; j++) for (k = 0; k <= N - 1; k++) C[i][j] += A[i][k] * B[k][j];\n#pragma endscop\n";
        let p = compile(src, "gemm").unwrap();
        let cfg = MachineConfig::gcc();
        let base = estimate_cost_reference(&p, &cfg).unwrap();
        let tiled = tile_band(&p, &[0], 3, 16).unwrap();
        let t = estimate_cost_reference(&tiled, &cfg).unwrap();
        assert!(
            t.mem_accesses * 2 < base.mem_accesses,
            "tiled mem {} vs base mem {}",
            t.mem_accesses,
            base.mem_accesses
        );
    }

    #[test]
    fn tiling_tiny_loops_adds_overhead() {
        // A small stream loop gains nothing from tiling and pays headers +
        // messy-bound vector penalty: the PLuTo-on-TSVC failure mode.
        let src = "param N = 64;\narray A[N];\narray B[N];\nout A;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) A[i] = B[i] * 2.0;\n#pragma endscop\n";
        let p = compile(src, "s").unwrap();
        let cfg = MachineConfig::gcc();
        let base = estimate_cost_reference(&p, &cfg).unwrap();
        let tiled = tile_band(&p, &[0], 1, 32).unwrap();
        let t = estimate_cost_reference(&tiled, &cfg).unwrap();
        assert!(
            t.cycles > base.cycles,
            "tiled {} should exceed base {}",
            t.cycles,
            base.cycles
        );
    }

    #[test]
    fn icx_base_shrinks_headroom() {
        let src = "param N = 4096;\narray A[N];\narray B[N];\nout A;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) A[i] = B[i] * 2.0;\n#pragma endscop\n";
        let p = compile(src, "s").unwrap();
        let par = parallelize(&p, &[0]).unwrap();
        let gcc = MachineConfig::gcc();
        let icx = MachineConfig::icx();
        let sp_gcc = estimate_cost_reference(&p, &gcc)
            .unwrap()
            .speedup_of(&estimate_cost_reference(&par, &gcc).unwrap());
        let sp_icx = estimate_cost_reference(&p, &icx)
            .unwrap()
            .speedup_of(&estimate_cost_reference(&par, &icx).unwrap());
        assert!(sp_gcc > 1.0 && sp_icx > 1.0);
        assert!(sp_icx < sp_gcc * 1.05);
    }

    #[test]
    fn speedup_of_rejects_degenerate_optimized_reports() {
        let src = "param N = 64;\narray A[N];\nout A;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) A[i] = A[i] + 1.0;\n#pragma endscop\n";
        let p = compile(src, "s").unwrap();
        let base = estimate_cost_reference(&p, &MachineConfig::gcc()).unwrap();
        // An unreachable candidate (infinite cycles) must rank at zero
        // speedup, not poison rankings with inf/NaN.
        assert_eq!(base.speedup_of(&CostReport::unreachable()), 0.0);
        for bad in [0.0, -1.0, f64::NAN, f64::NEG_INFINITY] {
            let mut opt = base.clone();
            opt.cycles = bad;
            assert_eq!(base.speedup_of(&opt), 0.0, "cycles = {bad}");
        }
        // Sanity: a real report still divides through.
        let mut opt = base.clone();
        opt.cycles = base.cycles / 2.0;
        assert_eq!(base.speedup_of(&opt), 2.0);
    }

    #[test]
    fn budget_exhaustion_reports_timeout() {
        let src = "param N = 64;\narray A[N];\nout A;\n#pragma scop\nfor (t = 0; t <= N - 1; t++) for (i = 0; i <= N - 1; i++) for (j = 0; j <= N - 1; j++) for (k = 0; k <= N - 1; k++) A[i] = A[i] + 1.0;\n#pragma endscop\n";
        let p = compile(src, "s").unwrap();
        let mut cfg = MachineConfig::gcc();
        cfg.instance_budget = 1000;
        assert_eq!(
            estimate_cost_reference(&p, &cfg),
            Err(CostError::InstanceBudget)
        );
    }
}
