//! Execution-driven cache measurement.
//!
//! [`CacheObserver`] bridges the bytecode execution engine to the cache
//! simulator: it implements [`looprag_exec::Observer`] over the engine's
//! dense array ids (store indexes), so every access streams into the
//! two-level [`Hierarchy`] without a single string hash. Where
//! [`crate::estimate_cost`] *models* a run over its own lowered cost IR,
//! [`measure_locality`] *executes* the program (bit-exact semantics,
//! coverage, budgets) and reports what the cache saw.

use crate::cache::{CacheGeometry, Hierarchy, ServiceLevel};
use looprag_exec::{ArrayStore, CompiledProgram, ExecConfig, ExecError, ExecStats, Observer};
use looprag_ir::Program;

/// Cache behaviour observed during one concrete execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocalityReport {
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses that went to memory.
    pub mem_accesses: u64,
    /// Element reads observed.
    pub reads: u64,
    /// Element writes observed.
    pub writes: u64,
}

impl LocalityReport {
    /// Total accesses observed.
    pub fn total(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.mem_accesses
    }

    /// Fraction of accesses served by L1 (1.0 when nothing was accessed).
    pub fn l1_hit_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            self.l1_hits as f64 / t as f64
        }
    }
}

/// An [`Observer`] that feeds every array access through a two-level
/// cache hierarchy.
///
/// Array identity arrives as the dense store index, so the address
/// computation is two array loads and a multiply — no name lookups.
/// Base addresses mirror [`crate::estimate_cost`]'s layout: sequential,
/// line-aligned, one cache line of padding between arrays.
#[derive(Debug, Clone)]
pub struct CacheObserver {
    caches: Hierarchy,
    /// Byte base address per dense store index.
    bases: Vec<u64>,
    report: LocalityReport,
}

impl CacheObserver {
    /// Builds an observer laying out every array of `store` at
    /// line-aligned sequential base addresses.
    pub fn new(store: &ArrayStore, l1: CacheGeometry, l2: CacheGeometry) -> Self {
        let mut bases = Vec::with_capacity(store.len());
        let mut next = 0u64;
        for idx in 0..store.len() {
            bases.push(next);
            let bytes = (store.at(idx).data.len() as u64 * 8).div_ceil(64) * 64;
            next += bytes + 64;
        }
        CacheObserver {
            caches: Hierarchy::new(l1, l2),
            bases,
            report: LocalityReport::default(),
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &LocalityReport {
        &self.report
    }

    /// Consumes the observer, returning the accumulated report.
    pub fn into_report(self) -> LocalityReport {
        self.report
    }
}

impl Observer for CacheObserver {
    fn access(&mut self, array: u32, flat: usize, is_write: bool) {
        if is_write {
            self.report.writes += 1;
        } else {
            self.report.reads += 1;
        }
        let addr = self.bases[array as usize] + flat as u64 * 8;
        match self.caches.access(addr) {
            ServiceLevel::L1 => self.report.l1_hits += 1,
            ServiceLevel::L2 => self.report.l2_hits += 1,
            ServiceLevel::Memory => self.report.mem_accesses += 1,
        }
    }
}

/// Executes `p` through the bytecode engine against a fresh
/// program-initialized store, streaming every access through caches of
/// the given machine's geometry, and returns what the hierarchy saw
/// plus the execution stats.
///
/// # Errors
///
/// Returns [`ExecError`] when the program faults or exhausts `cfg`'s
/// statement budget.
pub fn measure_locality(
    p: &Program,
    machine: &crate::MachineConfig,
    cfg: &ExecConfig,
) -> Result<(LocalityReport, ExecStats), ExecError> {
    let compiled = CompiledProgram::compile(p);
    let mut store = ArrayStore::from_program(p);
    let mut obs = CacheObserver::new(&store, machine.l1.clone(), machine.l2.clone());
    let stats = compiled.run_with_store(&mut store, cfg, Some(&mut obs))?;
    Ok((obs.into_report(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;
    use looprag_ir::compile;

    fn locality(src: &str) -> LocalityReport {
        let p = compile(src, "t").unwrap();
        let (report, stats) =
            measure_locality(&p, &MachineConfig::gcc(), &ExecConfig::default()).unwrap();
        assert!(stats.stmts_executed > 0);
        report
    }

    #[test]
    fn row_major_traversal_mostly_hits_l1() {
        let r = locality(
            "param N = 64;\narray A[N][N];\nout A;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) for (j = 0; j <= N - 1; j++) A[i][j] = A[i][j] + 1.0;\n#pragma endscop\n",
        );
        assert_eq!(r.reads, 64 * 64);
        assert_eq!(r.writes, 64 * 64);
        assert!(r.l1_hit_rate() > 0.8, "hit rate {}", r.l1_hit_rate());
    }

    #[test]
    fn column_major_traversal_misses_more() {
        let row = locality(
            "param N = 128;\narray A[N][N];\nout A;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) for (j = 0; j <= N - 1; j++) A[i][j] = A[i][j] + 1.0;\n#pragma endscop\n",
        );
        let col = locality(
            "param N = 128;\narray A[N][N];\nout A;\n#pragma scop\nfor (j = 0; j <= N - 1; j++) for (i = 0; i <= N - 1; i++) A[i][j] = A[i][j] + 1.0;\n#pragma endscop\n",
        );
        assert!(
            col.mem_accesses > row.mem_accesses * 2,
            "col {} vs row {}",
            col.mem_accesses,
            row.mem_accesses
        );
    }

    #[test]
    fn execution_and_model_agree_on_tiling_direction() {
        // The executed measurement must point the same way as the
        // analytic model: tiling gemm reduces memory traffic.
        let src = "param N = 64;\narray C[N][N];\narray A[N][N];\narray B[N][N];\nout C;\n#pragma scop\nfor (i = 0; i <= N - 1; i++) for (j = 0; j <= N - 1; j++) for (k = 0; k <= N - 1; k++) C[i][j] += A[i][k] * B[k][j];\n#pragma endscop\n";
        let p = compile(src, "gemm").unwrap();
        let tiled = looprag_transform::tile_band(&p, &[0], 3, 16).unwrap();
        let m = MachineConfig::gcc();
        let cfg = ExecConfig::default();
        let (base, _) = measure_locality(&p, &m, &cfg).unwrap();
        let (t, _) = measure_locality(&tiled, &m, &cfg).unwrap();
        assert!(
            t.mem_accesses * 2 < base.mem_accesses,
            "tiled mem {} vs base mem {}",
            t.mem_accesses,
            base.mem_accesses
        );
    }
}
