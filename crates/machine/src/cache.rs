//! Set-associative LRU cache simulation.

use std::hash::{Hash, Hasher};

/// Geometry of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheGeometry {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.assoc).max(1)
    }
}

/// One cache level with LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    geometry: CacheGeometry,
    /// Per-set tag stacks, most recently used last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheLevel {
    /// Builds an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = vec![Vec::new(); geometry.sets()];
        CacheLevel {
            geometry,
            sets,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the byte address; returns `true` on hit. Misses insert the
    /// line, evicting the least recently used way if needed.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.geometry.line_bytes as u64;
        let n_sets = self.sets.len() as u64;
        let set = (line % n_sets) as usize;
        let tag = line / n_sets;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|t| *t == tag) {
            ways.remove(pos);
            ways.push(tag);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.geometry.assoc {
                ways.remove(0);
            }
            ways.push(tag);
            self.misses += 1;
            false
        }
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Full mutable state: tag stacks (in LRU order) plus counters.
    pub(crate) fn state(&self) -> LevelState {
        LevelState {
            sets: self.sets.clone(),
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restores the tag stacks from a snapshot, leaving counters alone
    /// (the steady-state memoizer advances counters arithmetically).
    pub(crate) fn restore_tags(&mut self, s: &LevelState) {
        self.sets.clone_from(&s.sets);
    }

    /// Feeds the tag stacks (contents + LRU order) into a hasher.
    pub(crate) fn hash_tags<H: Hasher>(&self, h: &mut H) {
        self.sets.hash(h);
    }

    /// True when the live tag stacks equal the snapshot's, bit for bit.
    pub(crate) fn tags_eq(&self, s: &LevelState) -> bool {
        self.sets == s.sets
    }

    /// Advances the counters by precomputed deltas.
    pub(crate) fn bump_counters(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }
}

/// Snapshot of one level's state, taken by the cost engine's
/// steady-state memoizer at loop-iteration boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LevelState {
    /// Per-set tag stacks, most recently used last.
    pub(crate) sets: Vec<Vec<u64>>,
    /// Hit count at snapshot time.
    pub(crate) hits: u64,
    /// Miss count at snapshot time.
    pub(crate) misses: u64,
}

/// Snapshot of the full two-level simulator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct HierarchyState {
    /// L1 state.
    pub(crate) l1: LevelState,
    /// L2 state.
    pub(crate) l2: LevelState,
}

/// A two-level cache hierarchy returning the service level of each access.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// First level.
    pub l1: CacheLevel,
    /// Second level.
    pub l2: CacheLevel,
}

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Miss in both levels; served from memory.
    Memory,
}

impl Hierarchy {
    /// Builds a hierarchy from two geometries.
    pub fn new(l1: CacheGeometry, l2: CacheGeometry) -> Self {
        Hierarchy {
            l1: CacheLevel::new(l1),
            l2: CacheLevel::new(l2),
        }
    }

    /// Simulates one access.
    pub fn access(&mut self, addr: u64) -> ServiceLevel {
        if self.l1.access(addr) {
            ServiceLevel::L1
        } else if self.l2.access(addr) {
            ServiceLevel::L2
        } else {
            ServiceLevel::Memory
        }
    }

    /// Full state snapshot of both levels.
    pub(crate) fn state(&self) -> HierarchyState {
        HierarchyState {
            l1: self.l1.state(),
            l2: self.l2.state(),
        }
    }

    /// Restores both levels' tag stacks from a snapshot.
    pub(crate) fn restore_tags(&mut self, s: &HierarchyState) {
        self.l1.restore_tags(&s.l1);
        self.l2.restore_tags(&s.l2);
    }

    /// Feeds both levels' tag stacks into a hasher.
    pub(crate) fn hash_tags<H: Hasher>(&self, h: &mut H) {
        self.l1.hash_tags(h);
        self.l2.hash_tags(h);
    }

    /// True when both levels' live tag stacks equal the snapshot's.
    pub(crate) fn tags_eq(&self, s: &HierarchyState) -> bool {
        self.l1.tags_eq(&s.l1) && self.l2.tags_eq(&s.l2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheGeometry {
        CacheGeometry {
            size_bytes: 256,
            line_bytes: 64,
            assoc: 2,
        }
    }

    #[test]
    fn sequential_reuse_hits_within_line() {
        let mut c = CacheLevel::new(small());
        assert!(!c.access(0));
        assert!(c.access(8)); // same 64-byte line
        assert!(c.access(56));
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        // 256B / 64B lines / 2-way => 2 sets; lines 0,2,4 map to set 0.
        let mut c = CacheLevel::new(small());
        c.access(0); // line 0 -> set 0
        c.access(128); // line 2 -> set 0
        c.access(256); // line 4 -> set 0, evicts line 0
        assert!(!c.access(0), "line 0 must have been evicted");
        assert!(c.access(256));
    }

    #[test]
    fn lru_refresh_on_hit() {
        let mut c = CacheLevel::new(small());
        c.access(0);
        c.access(128);
        c.access(0); // refresh line 0
        c.access(256); // evicts line 2 (LRU), not line 0
        assert!(c.access(0));
        assert!(!c.access(128));
    }

    #[test]
    fn hierarchy_escalates() {
        let mut h = Hierarchy::new(small(), {
            CacheGeometry {
                size_bytes: 1024,
                line_bytes: 64,
                assoc: 4,
            }
        });
        assert_eq!(h.access(0), ServiceLevel::Memory);
        assert_eq!(h.access(0), ServiceLevel::L1);
        // Touch enough lines to evict line 0 from tiny L1 but not from L2.
        for k in 1..5 {
            h.access(k * 64);
        }
        assert_eq!(h.access(0), ServiceLevel::L2);
    }
}
