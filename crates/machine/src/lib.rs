//! # looprag-machine
//!
//! The performance substrate of the reproduction: a trace-driven
//! two-level cache simulator plus vectorization, parallelization and
//! loop-overhead models, standing in for the paper's hardware testbed.
//! Speedups reported by the experiment harness are ratios of
//! [`estimate_cost`] results.
//!
//! Production estimates run through the memoizing [`CostEngine`]
//! (steady-state cache-simulator memoization, dependence-analysis
//! reuse, cross-stage cost caching), bit-for-bit pinned to the naive
//! [`estimate_cost_reference`] walker.
//!
//! ```
//! use looprag_machine::{estimate_cost, MachineConfig};
//! let src = "param N = 1024;\narray A[N];\nout A;\n#pragma scop\n\
//! #pragma omp parallel for\nfor (i = 0; i <= N - 1; i++) A[i] = A[i] * 2.0;\n#pragma endscop\n";
//! let p = looprag_ir::compile(src, "scale")?;
//! let report = estimate_cost(&p, &MachineConfig::gcc())?;
//! assert!(report.cycles > 0.0);
//! assert_eq!(report.parallel_entries, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod cache;
mod engine;
mod model;
mod observer;

pub use cache::{CacheGeometry, CacheLevel, Hierarchy, ServiceLevel};
pub use engine::{estimate_cost, estimate_cost_with_deps, CostEngine, CostEngineStats};
pub use model::{estimate_cost_reference, CostError, CostReport, CostVec, MachineConfig};
pub use observer::{measure_locality, CacheObserver, LocalityReport};
