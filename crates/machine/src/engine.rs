//! The memoizing cost engine: fast cost estimation, bit-for-bit pinned
//! to [`estimate_cost_reference`](crate::estimate_cost_reference).
//!
//! Three layers make estimates cheap without changing a single bit of
//! any result:
//!
//! 1. **Steady-state memoization** inside the cache simulator. At the
//!    iteration boundaries of *body-invariant* loops (loops whose body
//!    never references the loop's own iterator — outer time loops of
//!    stencils), the walker fingerprints the full simulator state (tag
//!    arrays + LRU order). When a state recurs the remaining iterations
//!    are provably periodic: the walker stops simulating accesses and
//!    instead replays the recorded per-iteration `f64` breakdown
//!    additions in the exact naive sequence and advances the integer
//!    counters by periodic prefix sums, so totals, hit counters and
//!    `InstanceBudget` exhaustion points are bitwise identical to the
//!    naive run.
//! 2. **Dependence-analysis reuse**: [`estimate_cost_with_deps`] lets
//!    callers that already hold a [`DependenceSet`] (the beam search
//!    Arc-shares them across nodes) skip the per-estimate analysis; a
//!    shared deps cache covers everyone else. The cost model's analysis
//!    configuration is identical to the search's `analyze_for_search`,
//!    which is what makes the sets interchangeable.
//! 3. **Cross-stage cost caching**: results are memoized under
//!    `(MachineConfig::fingerprint(), printed program)`, shared by the
//!    pipeline's candidate batches, the search node table and campaign
//!    arms. Full keys — not hashes of them — are stored, so a hash
//!    collision can never alias two programs. The cache is thread-safe
//!    behind a mutex and deterministic by construction: a cached result
//!    is bitwise equal to a fresh one, so hit/miss timing (and pool
//!    scheduling) cannot change any outcome.

use crate::cache::HierarchyState;
use crate::model::{
    cost_analysis, lower_for_cost, CostError, CostReport, CostVec, LNode, MachineConfig, Model,
};
use looprag_dependence::DependenceSet;
use looprag_ir::{print_program, Program};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::{Arc, Mutex, OnceLock};

/// Minimum trip count before the steady-state machinery engages on a
/// body-invariant loop (shorter loops cannot amortize the snapshots).
const MIN_STEADY_TRIPS: u64 = 4;

/// Maximum iteration boundaries fingerprinted per loop execution. If no
/// recurrence appears within this window the loop runs naively, so the
/// worst-case overhead per execution is bounded and small.
const MAX_BOUNDARIES: usize = 64;

/// Executions of one loop node allowed to complete without a recurrence
/// before the walker stops fingerprinting that node. A loop whose
/// working set never settles (or that is executed thousands of times by
/// an outer nest) would otherwise pay the snapshot overhead on every
/// execution for nothing.
const STEADY_FAILURE_CAP: u32 = 2;

/// Cost-cache capacity before a wholesale clear (the metrics-cache
/// pattern: bounded memory, no eviction bookkeeping on the hot path).
const COST_CACHE_CAP: usize = 8192;

/// Dependence-cache capacity before a wholesale clear.
const DEPS_CACHE_CAP: usize = 2048;

// ---------------------------------------------------------------------
// The memoizing walker.
// ---------------------------------------------------------------------

/// Snapshot taken at one iteration boundary of a candidate loop: the
/// simulator state plus every integer counter, so both the recurrence
/// check and the periodic counter advance are exact.
struct Boundary {
    tag_hash: u64,
    state: HierarchyState,
    instances: u64,
    l1_hits: u64,
    l2_hits: u64,
    mem_accesses: u64,
    parallel_entries: u64,
}

/// The engine's walker: the reference [`Model`] plus steady-state
/// memoization on body-invariant loops. Every arithmetic operation on
/// the cost vectors happens in the exact order the reference performs
/// it — replay *re-adds* the recorded per-iteration vectors rather than
/// multiplying, because float addition does not distribute.
struct MemoModel<'a> {
    m: Model<'a>,
    steady_loops: u64,
    iters_replayed: u64,
    /// Per loop node (keyed by its address in the lowered tree, which
    /// is stable for the walk's lifetime): executions that completed
    /// without a recurrence. At [`STEADY_FAILURE_CAP`] the node runs
    /// naively with zero snapshot overhead forever after.
    steady_failures: HashMap<usize, u32>,
}

impl<'a> MemoModel<'a> {
    fn new(cfg: &'a MachineConfig) -> MemoModel<'a> {
        MemoModel {
            m: Model::new(cfg),
            steady_loops: 0,
            iters_replayed: 0,
            steady_failures: HashMap::new(),
        }
    }

    fn visit_nodes(&mut self, nodes: &[LNode]) -> Result<CostVec, CostError> {
        let mut cost = CostVec::default();
        for n in nodes {
            cost.add(self.visit_node(n)?);
        }
        Ok(cost)
    }

    fn visit_node(&mut self, n: &LNode) -> Result<CostVec, CostError> {
        match n {
            // Statements are the hot leaves; the body is a verbatim
            // copy of the reference walker's (an extra delegation call
            // here costs ~30% on gemm-class kernels).
            LNode::Stmt { alu, accesses } => {
                if self.m.instances >= self.m.cfg.instance_budget {
                    return Err(CostError::InstanceBudget);
                }
                self.m.instances += 1;
                let mut cost = CostVec::default();
                cost.alu += alu;
                for a in accesses {
                    self.m.charge_access(a, &mut cost);
                }
                Ok(cost)
            }
            LNode::If { conds, then } => {
                let mut cost = CostVec::default();
                cost.alu += conds.len() as f64;
                let taken = conds
                    .iter()
                    .all(|(l, op, r)| op.eval(l.eval(&self.m.iters), r.eval(&self.m.iters)));
                if taken {
                    cost.add(self.visit_nodes(then)?);
                }
                Ok(cost)
            }
            LNode::Loop {
                slot,
                lb,
                ub,
                inclusive,
                step,
                parallel,
                vec_factor,
                header_ovh,
                body_invariant,
                body,
            } => {
                let lbv = lb.eval(&self.m.iters);
                let mut ubv = ub.eval(&self.m.iters);
                if !inclusive {
                    ubv -= 1;
                }
                let mut cost = CostVec::default();
                cost.ovh += header_ovh;
                if ubv < lbv {
                    return Ok(cost);
                }
                let trips = ((ubv - lbv) / step + 1) as u64;
                let parallel_here = *parallel && !self.m.in_parallel;
                if parallel_here {
                    self.m.in_parallel = true;
                    self.m.parallel_entries += 1;
                }
                while self.m.iters.len() <= *slot {
                    self.m.iters.push(0);
                }
                let mut body_cost = CostVec::default();
                let node_key = n as *const LNode as usize;
                let res = if *body_invariant
                    && trips >= MIN_STEADY_TRIPS
                    && self.steady_failures.get(&node_key).copied().unwrap_or(0)
                        < STEADY_FAILURE_CAP
                {
                    self.run_loop_steady(
                        node_key,
                        *slot,
                        lbv,
                        ubv,
                        *step,
                        trips,
                        *header_ovh,
                        body,
                        &mut body_cost,
                    )
                } else {
                    self.run_loop_naive(*slot, lbv, ubv, *step, *header_ovh, body, &mut body_cost)
                };
                if parallel_here {
                    self.m.in_parallel = false;
                }
                res?;
                if let Some(factor) = vec_factor {
                    body_cost.alu /= factor;
                    body_cost.l1 /= factor;
                    body_cost.ovh /= factor;
                }
                if parallel_here {
                    let ideal = (self.m.cfg.threads as f64).min(trips as f64);
                    let p_eff = (ideal * self.m.cfg.parallel_efficiency).max(1.0);
                    body_cost.scale_all(1.0 / p_eff);
                    body_cost.ovh += self.m.cfg.parallel_spawn_cycles as f64;
                }
                cost.add(body_cost);
                Ok(cost)
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the loop-header tuple
    fn run_loop_naive(
        &mut self,
        slot: usize,
        lbv: i64,
        ubv: i64,
        step: i64,
        header_ovh: f64,
        body: &[LNode],
        body_cost: &mut CostVec,
    ) -> Result<(), CostError> {
        let mut v = lbv;
        while v <= ubv {
            self.m.iters[slot] = v;
            body_cost.ovh += header_ovh;
            body_cost.add(self.visit_nodes(body)?);
            v += step;
        }
        Ok(())
    }

    /// The steady-state path for a body-invariant loop. Simulates
    /// iterations naively while fingerprinting the simulator state at
    /// each boundary; on a recurrence, fast-forwards the rest.
    ///
    /// Soundness: the body never references this loop's iterator slot,
    /// so every iteration issues the same address stream over whatever
    /// cache state it starts from. Simulator state at a boundary is
    /// therefore a complete summary of the future — if the state at
    /// boundary `k` equals the state at an earlier boundary `u`, the
    /// per-iteration cost vectors and counter deltas repeat with period
    /// `P = k - u` forever after.
    #[allow(clippy::too_many_arguments)] // mirrors the loop-header tuple
    fn run_loop_steady(
        &mut self,
        node_key: usize,
        slot: usize,
        lbv: i64,
        ubv: i64,
        step: i64,
        trips: u64,
        header_ovh: f64,
        body: &[LNode],
        body_cost: &mut CostVec,
    ) -> Result<(), CostError> {
        let mut boundaries: Vec<Boundary> = Vec::new();
        let mut deltas: Vec<CostVec> = Vec::new();
        let mut v = lbv;
        let mut i: u64 = 0;
        while v <= ubv {
            if (i as usize) < MAX_BOUNDARIES {
                let mut hasher = DefaultHasher::new();
                self.m.caches.hash_tags(&mut hasher);
                let h = hasher.finish();
                // Hash prefilter, then a full tag comparison: a hash
                // collision costs time, never correctness.
                if let Some(u) = boundaries
                    .iter()
                    .position(|b| b.tag_hash == h && self.m.caches.tags_eq(&b.state))
                {
                    return self.fast_forward(
                        slot,
                        lbv,
                        step,
                        trips,
                        i,
                        u,
                        header_ovh,
                        &boundaries,
                        &deltas,
                        body_cost,
                    );
                }
                boundaries.push(Boundary {
                    tag_hash: h,
                    state: self.m.caches.state(),
                    instances: self.m.instances,
                    l1_hits: self.m.l1_hits,
                    l2_hits: self.m.l2_hits,
                    mem_accesses: self.m.mem_accesses,
                    parallel_entries: self.m.parallel_entries,
                });
            }
            self.m.iters[slot] = v;
            body_cost.ovh += header_ovh;
            let c = self.visit_nodes(body)?;
            body_cost.add(c);
            if (i as usize) < MAX_BOUNDARIES {
                deltas.push(c);
            }
            v += step;
            i += 1;
        }
        // Completed with no recurrence: charge a strike so a loop whose
        // state never settles stops paying for snapshots.
        *self.steady_failures.entry(node_key).or_insert(0) += 1;
        Ok(())
    }

    /// Replays the remaining `trips - k` iterations of a loop whose
    /// state at boundary `k` recurred from boundary `u`.
    #[allow(clippy::too_many_arguments)] // internal continuation of run_loop_steady
    fn fast_forward(
        &mut self,
        slot: usize,
        lbv: i64,
        step: i64,
        trips: u64,
        k: u64,
        u: usize,
        header_ovh: f64,
        boundaries: &[Boundary],
        deltas: &[CostVec],
        body_cost: &mut CostVec,
    ) -> Result<(), CostError> {
        let period = k as usize - u;
        let remaining = trips - k;
        let q = remaining / period as u64;
        let r = (remaining % period as u64) as usize;
        let b_u = &boundaries[u];
        let b_ur = &boundaries[u + r];
        // Any counter C recorded at the boundaries advances by periodic
        // prefix sums: with the live value C(k) and the snapshots,
        // C(final) = C(k) + q*(C(k) - C(u)) + (C(u+r) - C(u)).
        let advance = |cur: u64, at_u: u64, at_ur: u64| -> u128 {
            cur as u128 + q as u128 * (cur - at_u) as u128 + (at_ur - at_u) as u128
        };

        // Budget check first. The naive walker errors out of iteration
        // `m` exactly when its statement-visit count would push
        // `instances` past the budget; deltas are non-negative, so some
        // remaining iteration errors iff the final total exceeds the
        // budget. On error the whole estimate returns
        // `Err(InstanceBudget)` and every accumulated number is
        // discarded, so erroring here without materializing the partial
        // state is bitwise-faithful.
        let final_instances = advance(self.m.instances, b_u.instances, b_ur.instances);
        if final_instances > self.m.cfg.instance_budget as u128 {
            return Err(CostError::InstanceBudget);
        }
        self.m.instances = final_instances as u64;
        self.m.l1_hits = advance(self.m.l1_hits, b_u.l1_hits, b_ur.l1_hits) as u64;
        self.m.l2_hits = advance(self.m.l2_hits, b_u.l2_hits, b_ur.l2_hits) as u64;
        self.m.mem_accesses =
            advance(self.m.mem_accesses, b_u.mem_accesses, b_ur.mem_accesses) as u64;
        self.m.parallel_entries = advance(
            self.m.parallel_entries,
            b_u.parallel_entries,
            b_ur.parallel_entries,
        ) as u64;

        // The simulator's own hit/miss counters advance by the same
        // formula; the tag arrays land where the periodic orbit says
        // they must — the state at boundary `u + r`.
        let (l1h, l1m) = (self.m.caches.l1.hits(), self.m.caches.l1.misses());
        self.m.caches.l1.bump_counters(
            (advance(l1h, b_u.state.l1.hits, b_ur.state.l1.hits) - l1h as u128) as u64,
            (advance(l1m, b_u.state.l1.misses, b_ur.state.l1.misses) - l1m as u128) as u64,
        );
        let (l2h, l2m) = (self.m.caches.l2.hits(), self.m.caches.l2.misses());
        self.m.caches.l2.bump_counters(
            (advance(l2h, b_u.state.l2.hits, b_ur.state.l2.hits) - l2h as u128) as u64,
            (advance(l2m, b_u.state.l2.misses, b_ur.state.l2.misses) - l2m as u128) as u64,
        );
        self.m.caches.restore_tags(&b_ur.state);

        // Replay the f64 additions in the exact naive sequence. The
        // iteration that ran from boundary `j` contributed `deltas[j]`;
        // remaining iteration `m` (0-based) repeats the cycle position
        // `u + (m mod P)`. No multiplying out — float addition is not
        // associative, and the pin is bitwise.
        for m in 0..remaining as usize {
            body_cost.ovh += header_ovh;
            body_cost.add(deltas[u + (m % period)]);
        }
        // The naive loop leaves the iterator at its last value; nothing
        // after the loop can read this slot, but keep the state exact.
        self.m.iters[slot] = lbv + (trips as i64 - 1) * step;
        self.iters_replayed += remaining;
        self.steady_loops += 1;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The cross-stage engine.
// ---------------------------------------------------------------------

/// Work counters for the engine's caches and the steady-state memoizer,
/// cumulative since construction (or the last [`CostEngine::clear`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostEngineStats {
    /// Cost queries answered from the cross-stage cache.
    pub cost_hits: u64,
    /// Cost queries computed fresh.
    pub cost_misses: u64,
    /// Fresh computations that reused a caller-supplied or cached
    /// dependence set instead of re-running the analysis.
    pub deps_reused: u64,
    /// Dependence analyses actually run.
    pub deps_computed: u64,
    /// Loops fast-forwarded by the steady-state memoizer.
    pub steady_loops: u64,
    /// Loop iterations replayed instead of simulated per-access.
    pub iters_replayed: u64,
}

/// Cached handles into the global [`looprag_trace`] metrics registry,
/// mirroring [`CostEngineStats`]. Observational only: the counters are
/// process-wide (shared across engines) and incremented at the same
/// sites as the per-engine stats, so dashboards can attribute work
/// without querying every engine instance.
struct EngineMetrics {
    cost_hits: looprag_trace::Counter,
    cost_misses: looprag_trace::Counter,
    deps_reused: looprag_trace::Counter,
    deps_computed: looprag_trace::Counter,
    steady_loops: looprag_trace::Counter,
    iters_replayed: looprag_trace::Counter,
}

fn engine_metrics() -> &'static EngineMetrics {
    static M: OnceLock<EngineMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = looprag_trace::metrics();
        EngineMetrics {
            cost_hits: r.counter("cost.cache_hits"),
            cost_misses: r.counter("cost.cache_misses"),
            deps_reused: r.counter("cost.deps_reused"),
            deps_computed: r.counter("cost.deps_computed"),
            steady_loops: r.counter("cost.steady_loops"),
            iters_replayed: r.counter("cost.iters_replayed"),
        }
    })
}

struct EngineInner {
    /// `(machine fingerprint, printed program)` → result. Full key
    /// strings, so cache hits cannot alias distinct inputs.
    costs: HashMap<(String, String), Result<CostReport, CostError>>,
    /// printed program → dependence set (machine-independent).
    deps: HashMap<String, Arc<DependenceSet>>,
    stats: CostEngineStats,
}

/// The memoizing, cross-stage cost engine. See the module docs for the
/// three layers; the determinism contract is that every result is
/// bitwise identical to [`crate::estimate_cost_reference`], cached or
/// not, at any pool size.
pub struct CostEngine {
    inner: Mutex<EngineInner>,
}

impl Default for CostEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CostEngine {
    /// An empty engine with its own private caches.
    pub fn new() -> CostEngine {
        CostEngine {
            inner: Mutex::new(EngineInner {
                costs: HashMap::new(),
                deps: HashMap::new(),
                stats: CostEngineStats::default(),
            }),
        }
    }

    /// The process-wide shared engine: the cache the pipeline, the beam
    /// search and campaign arms all score through.
    pub fn global() -> &'static CostEngine {
        static GLOBAL: OnceLock<CostEngine> = OnceLock::new();
        GLOBAL.get_or_init(CostEngine::new)
    }

    /// Estimates the cost of `p` on `cfg`; answers from the cross-stage
    /// cache when this (program, machine) pair has been scored before.
    pub fn estimate(&self, p: &Program, cfg: &MachineConfig) -> Result<CostReport, CostError> {
        self.estimate_impl(p, cfg, None, false).0
    }

    /// [`CostEngine::estimate`] with a caller-supplied dependence set
    /// (must describe `p` under the cost model's analysis
    /// configuration — the search's `analyze_for_search` sets qualify,
    /// and parallel marks do not change a program's dependences).
    pub fn estimate_with_deps(
        &self,
        p: &Program,
        cfg: &MachineConfig,
        deps: Arc<DependenceSet>,
    ) -> Result<CostReport, CostError> {
        self.estimate_impl(p, cfg, Some(deps), false).0
    }

    /// [`CostEngine::estimate`], also returning the dependence set for
    /// `p` so callers with their own legality queries (the beam search)
    /// never analyze the same program twice.
    pub fn estimate_full(
        &self,
        p: &Program,
        cfg: &MachineConfig,
    ) -> (Result<CostReport, CostError>, Arc<DependenceSet>) {
        let (report, deps) = self.estimate_impl(p, cfg, None, true);
        (
            report,
            deps.expect("estimate_impl resolves deps when want_deps is set"),
        )
    }

    fn estimate_impl(
        &self,
        p: &Program,
        cfg: &MachineConfig,
        supplied: Option<Arc<DependenceSet>>,
        want_deps: bool,
    ) -> (Result<CostReport, CostError>, Option<Arc<DependenceSet>>) {
        let printed = print_program(p);
        let key = (cfg.fingerprint(), printed);
        let supplied_deps = supplied.is_some();
        let mut deps = supplied;
        {
            let mut inner = self.inner.lock().expect("cost engine lock");
            if let Some(hit) = inner.costs.get(&key) {
                let hit = hit.clone();
                inner.stats.cost_hits += 1;
                engine_metrics().cost_hits.inc();
                if deps.is_none() && want_deps {
                    deps = inner.deps.get(&key.1).cloned();
                }
                drop(inner);
                if want_deps && deps.is_none() {
                    // Deps were evicted (or never cached): resolve them
                    // outside the lock, keeping the cached report.
                    deps = Some(self.resolve_deps(&key.1, p, None));
                }
                return (hit, deps);
            }
            inner.stats.cost_misses += 1;
            engine_metrics().cost_misses.inc();
            if deps.is_none() {
                deps = inner.deps.get(&key.1).cloned();
                if deps.is_some() {
                    inner.stats.deps_reused += 1;
                    engine_metrics().deps_reused.inc();
                }
            } else {
                inner.stats.deps_reused += 1;
                engine_metrics().deps_reused.inc();
            }
        }
        // Compute outside the lock: concurrent scorers proceed in
        // parallel, and a racing duplicate insert is harmless because
        // both values are bitwise identical.
        let deps = match deps {
            // A caller-supplied set is also worth caching for future
            // callers that don't hold one.
            Some(d) if supplied_deps => self.resolve_deps(&key.1, p, Some(d)),
            Some(d) => d,
            None => self.resolve_deps(&key.1, p, None),
        };
        let report = compute_fresh(p, cfg, &deps, self);
        let mut inner = self.inner.lock().expect("cost engine lock");
        if inner.costs.len() >= COST_CACHE_CAP {
            inner.costs.clear();
        }
        inner.costs.insert(key, report.clone());
        (report, Some(deps))
    }

    /// Returns the cached dependence set for `printed`, inserting
    /// `supplied` (or a fresh analysis of `p`) on a miss.
    fn resolve_deps(
        &self,
        printed: &str,
        p: &Program,
        supplied: Option<Arc<DependenceSet>>,
    ) -> Arc<DependenceSet> {
        {
            let mut inner = self.inner.lock().expect("cost engine lock");
            if let Some(d) = inner.deps.get(printed) {
                return d.clone();
            }
            if let Some(d) = supplied {
                if inner.deps.len() >= DEPS_CACHE_CAP {
                    inner.deps.clear();
                }
                inner.deps.insert(printed.to_string(), d.clone());
                return d;
            }
        }
        let d = Arc::new(cost_analysis(p));
        let mut inner = self.inner.lock().expect("cost engine lock");
        inner.stats.deps_computed += 1;
        engine_metrics().deps_computed.inc();
        if inner.deps.len() >= DEPS_CACHE_CAP {
            inner.deps.clear();
        }
        inner
            .deps
            .entry(printed.to_string())
            .or_insert_with(|| d.clone());
        d
    }

    /// Cumulative cache and memoizer counters.
    pub fn stats(&self) -> CostEngineStats {
        self.inner.lock().expect("cost engine lock").stats
    }

    /// Drops every cached cost and dependence set and zeroes the stats.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cost engine lock");
        inner.costs.clear();
        inner.deps.clear();
        inner.stats = CostEngineStats::default();
    }
}

/// One fresh estimate through the memoizing walker, folding the
/// steady-state counters into the engine's stats.
fn compute_fresh(
    p: &Program,
    cfg: &MachineConfig,
    deps: &DependenceSet,
    engine: &CostEngine,
) -> Result<CostReport, CostError> {
    let prepared = lower_for_cost(p, cfg, deps)?;
    let mut model = MemoModel::new(cfg);
    let walked = model.visit_nodes(&prepared.lowered);
    {
        let mut inner = engine.inner.lock().expect("cost engine lock");
        inner.stats.steady_loops += model.steady_loops;
        inner.stats.iters_replayed += model.iters_replayed;
        engine_metrics().steady_loops.add(model.steady_loops);
        engine_metrics().iters_replayed.add(model.iters_replayed);
    }
    let breakdown = walked?;
    Ok(model.m.report(breakdown, prepared.vectorized))
}

/// Estimates the cost of running `p` on `cfg` through the process-wide
/// [`CostEngine`] — the production entry point, bit-for-bit pinned to
/// [`crate::estimate_cost_reference`].
///
/// # Errors
///
/// Returns [`CostError::InstanceBudget`] when the simulated instance
/// budget is exhausted (the harness reports this as a timeout) and
/// [`CostError::Unbound`] for malformed programs.
pub fn estimate_cost(p: &Program, cfg: &MachineConfig) -> Result<CostReport, CostError> {
    CostEngine::global().estimate(p, cfg)
}

/// [`estimate_cost`] with a caller-supplied dependence set, skipping
/// the per-estimate analysis entirely.
///
/// # Errors
///
/// As [`estimate_cost`].
pub fn estimate_cost_with_deps(
    p: &Program,
    cfg: &MachineConfig,
    deps: Arc<DependenceSet>,
) -> Result<CostReport, CostError> {
    CostEngine::global().estimate_with_deps(p, cfg, deps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::estimate_cost_reference;
    use looprag_ir::compile;

    /// Renders every bit of a cost result, so equality of the strings
    /// is bitwise equality of the reports (f64s via their bit patterns).
    fn bits(r: &Result<CostReport, CostError>) -> String {
        match r {
            Ok(r) => format!(
                "{:016x}|{:016x},{:016x},{:016x},{:016x},{:016x}|{}|{}|{}|{}|{:?}|{}",
                r.cycles.to_bits(),
                r.breakdown.alu.to_bits(),
                r.breakdown.l1.to_bits(),
                r.breakdown.l2.to_bits(),
                r.breakdown.mem.to_bits(),
                r.breakdown.ovh.to_bits(),
                r.instances,
                r.l1_hits,
                r.l2_hits,
                r.mem_accesses,
                r.vectorized,
                r.parallel_entries,
            ),
            Err(e) => format!("err:{e:?}"),
        }
    }

    fn pin(src: &str, cfg: &MachineConfig) -> CostEngineStats {
        let p = compile(src, "t").unwrap();
        let engine = CostEngine::new();
        let fresh = engine.estimate(&p, cfg);
        let reference = estimate_cost_reference(&p, cfg);
        assert_eq!(bits(&fresh), bits(&reference), "fresh vs reference");
        let hit = engine.estimate(&p, cfg);
        assert_eq!(bits(&hit), bits(&reference), "cache hit vs reference");
        let stats = engine.stats();
        assert_eq!(stats.cost_hits, 1);
        assert_eq!(stats.cost_misses, 1);
        stats
    }

    /// An outer time loop whose body never reads `t`: the canonical
    /// steady-state shape (jacobi-style).
    const TIME_STENCIL: &str = "param T = 200;\nparam N = 400;\narray A[N];\narray B[N];\nout A;\n#pragma scop\nfor (t = 0; t <= T - 1; t++) { for (i = 1; i <= N - 2; i++) B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0; for (i = 1; i <= N - 2; i++) A[i] = B[i]; }\n#pragma endscop\n";

    /// Same shape but the body reads `fict[t]`: state recurrence no
    /// longer implies periodicity, so the memoizer must stay off.
    const TIME_DEPENDENT: &str = "param T = 200;\nparam N = 400;\narray A[N];\narray F[T];\nout A;\n#pragma scop\nfor (t = 0; t <= T - 1; t++) { for (i = 1; i <= N - 2; i++) A[i] = A[i] + F[t]; }\n#pragma endscop\n";

    #[test]
    fn steady_stencil_is_memoized_and_pinned() {
        let stats = pin(TIME_STENCIL, &MachineConfig::gcc());
        assert!(stats.steady_loops > 0, "time loop should fast-forward");
        assert!(stats.iters_replayed > 0);
    }

    #[test]
    fn iterator_dependent_body_is_not_memoized_but_pinned() {
        let stats = pin(TIME_DEPENDENT, &MachineConfig::clang());
        assert_eq!(
            stats.steady_loops, 0,
            "a body reading F[t] must not be fast-forwarded"
        );
    }

    #[test]
    fn budget_exhaustion_mid_replay_is_pinned() {
        // Budgets that exhaust before, during and after the time loop's
        // steady state all pin (Err and Ok cases both bitwise).
        for budget in [500u64, 5_000, 40_000, 100_000, 1_000_000] {
            let mut cfg = MachineConfig::gcc();
            cfg.instance_budget = budget;
            pin(TIME_STENCIL, &cfg);
        }
    }

    #[test]
    fn fingerprint_separates_configs() {
        let gcc = MachineConfig::gcc();
        assert_eq!(gcc.fingerprint(), MachineConfig::gcc().fingerprint());
        assert_ne!(gcc.fingerprint(), MachineConfig::clang().fingerprint());
        let mut tweaked = MachineConfig::gcc();
        tweaked.instance_budget -= 1;
        assert_ne!(gcc.fingerprint(), tweaked.fingerprint());
        // And the engine keys on it: same program, different budget,
        // different (cached) results.
        let p = compile(TIME_STENCIL, "t").unwrap();
        let engine = CostEngine::new();
        let full = engine.estimate(&p, &gcc);
        let mut tiny = MachineConfig::gcc();
        tiny.instance_budget = 500;
        let starved = engine.estimate(&p, &tiny);
        assert!(full.is_ok());
        assert_eq!(starved, Err(CostError::InstanceBudget));
        assert_eq!(engine.stats().cost_misses, 2);
    }

    #[test]
    fn with_deps_skips_analysis_and_pins() {
        let p = compile(TIME_STENCIL, "t").unwrap();
        let cfg = MachineConfig::gcc();
        let deps = Arc::new(cost_analysis(&p));
        let engine = CostEngine::new();
        let viaarc = engine.estimate_with_deps(&p, &cfg, deps);
        assert_eq!(bits(&viaarc), bits(&estimate_cost_reference(&p, &cfg)));
        let stats = engine.stats();
        assert_eq!(stats.deps_computed, 0, "supplied deps must be reused");
        assert_eq!(stats.deps_reused, 1);
        // estimate_full hands the (cached) deps back out.
        let (report, d2) = engine.estimate_full(&p, &cfg);
        assert_eq!(bits(&report), bits(&viaarc));
        assert_eq!(engine.stats().cost_hits, 1);
        assert!(
            Arc::strong_count(&d2) >= 2,
            "deps should come from the cache"
        );
    }

    #[test]
    fn clear_resets_caches_and_stats() {
        let p = compile(TIME_STENCIL, "t").unwrap();
        let cfg = MachineConfig::gcc();
        let engine = CostEngine::new();
        let first = engine.estimate(&p, &cfg);
        engine.clear();
        assert_eq!(engine.stats(), CostEngineStats::default());
        let second = engine.estimate(&p, &cfg);
        assert_eq!(bits(&first), bits(&second));
        assert_eq!(engine.stats().cost_misses, 1, "post-clear call recomputes");
    }
}
