//! # looprag-runtime
//!
//! The deterministic parallel runtime underneath the pipeline and the
//! campaign driver: a `std::thread` worker pool that maps a function
//! over indexed work items and merges the results back **in submission
//! order**, plus the virtual-cost [`Budget`] that replaces wall-clock
//! deadlines so outcomes are reproducible regardless of machine load or
//! thread count.
//!
//! Determinism contract: [`par_map`] output is a pure function of
//! `(items, f)` — identical at any pool size — provided `f` itself is
//! pure. The pool only changes *when* each item runs, never *what* is
//! computed or *where* its result lands.
//!
//! ```
//! use looprag_runtime::par_map;
//! let squares = par_map(4, &[1, 2, 3, 4, 5], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable overriding the worker-pool size when the
/// configured size is 0 (auto).
pub const THREADS_ENV: &str = "LOOPRAG_THREADS";

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Chains one FNV-1a 64-bit pass over `bytes` onto a running `state`.
///
/// The hash register starts at `state ^ FNV64_OFFSET`, so
/// `fnv64_fold(0, ..)` is the plain single-shot FNV-1a hash and a
/// non-zero `state` threads an earlier fold's result into the next one
/// (the knowledge base's content fingerprint folds every insertion this
/// way). This is the one shared definition behind the serve layer's
/// per-kernel seeds, the pipeline's target seeds and
/// `KnowledgeBase::state_fingerprint` — their outputs are pinned by
/// unit tests here so the constants cannot drift apart again.
pub fn fnv64_fold(state: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = state ^ FNV64_OFFSET;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// Single-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    fnv64_fold(0, bytes)
}

/// Parses a `LOOPRAG_THREADS` value strictly: the only accepted form is
/// a positive integer.
///
/// # Errors
///
/// Returns a descriptive error for non-numeric values and for `0`
/// (which used to be silently indistinguishable from an unset
/// variable; unset the variable instead to get auto sizing).
pub fn parse_threads_env(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "{THREADS_ENV} must be a positive integer; got 0 \
             (unset the variable for automatic pool sizing)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "{THREADS_ENV} must be a positive integer; got {value:?}"
        )),
    }
}

/// Resolves a configured pool size: an explicit `configured > 0` wins,
/// then the `LOOPRAG_THREADS` environment variable, then the machine's
/// available parallelism.
///
/// An invalid `LOOPRAG_THREADS` value (non-numeric or zero) is *not*
/// silently treated as unset: a loud warning is printed to stderr (once
/// per process) before falling back to available parallelism, so a
/// typo'd `LOOPRAG_THREADS=fuor` or `LOOPRAG_THREADS=0` cannot quietly
/// change which pool size an experiment ran at.
pub fn resolve_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        match parse_threads_env(&v) {
            Ok(n) => return n,
            Err(msg) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "[looprag-runtime] WARNING: {msg}; falling back to available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on a pool of `threads` workers (work-stealing
/// by index) and returns the results in submission order.
///
/// * `threads <= 1` (or a single item) runs strictly sequentially on
///   the calling thread — the path `LOOPRAG_THREADS=1` exercises.
/// * A panic in `f` propagates to the caller once the pool has joined.
/// * Each `f(i, item)` call receives the item's submission index so
///   work can be seeded or labelled deterministically.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    // scope() joins every worker and re-raises any worker panic, so a
    // panicking `f` cannot silently drop work items.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// What a per-kernel execution budget counts.
///
/// The default pipeline budget is [`BudgetPolicy::VirtualCost`]: every
/// model call and every candidate test charges a fixed number of units,
/// so the skip/keep decisions are bit-for-bit reproducible on any
/// machine at any thread count. [`BudgetPolicy::WallClock`] restores the
/// paper's literal time limit for deployments that want it and accept
/// the nondeterminism.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetPolicy {
    /// Never exhausts.
    Unlimited,
    /// Deterministic virtual-cost units.
    VirtualCost {
        /// Units available before the budget reports exhaustion.
        limit: u64,
    },
    /// Wall-clock time (nondeterministic; opt-in only).
    WallClock {
        /// Elapsed time after which the budget reports exhaustion.
        limit: Duration,
    },
}

impl BudgetPolicy {
    /// The pipeline default: a virtual-cost limit far above what a
    /// normal two-round run spends, standing in for the paper's 90 s
    /// per-kernel generation limit without touching the clock.
    pub fn default_virtual() -> Self {
        BudgetPolicy::VirtualCost { limit: 10_000 }
    }
}

/// A per-kernel execution budget.
///
/// All `charge`/`exhausted` calls must come from the sequential control
/// thread (charges are decided in submission order *before* work fans
/// out to the pool); the type is deliberately not `Sync`.
#[derive(Debug)]
pub struct Budget {
    policy: BudgetPolicy,
    spent: Cell<u64>,
    start: Instant,
}

impl Budget {
    /// A fresh budget under `policy`; wall-clock budgets start now.
    pub fn new(policy: BudgetPolicy) -> Self {
        Budget {
            policy,
            spent: Cell::new(0),
            start: Instant::now(),
        }
    }

    /// Records `units` of spend (ignored under `WallClock`).
    pub fn charge(&self, units: u64) {
        self.spent.set(self.spent.get().saturating_add(units));
    }

    /// Virtual-cost units charged so far.
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }

    /// Whether the budget is used up.
    pub fn exhausted(&self) -> bool {
        match &self.policy {
            BudgetPolicy::Unlimited => false,
            BudgetPolicy::VirtualCost { limit } => self.spent.get() >= *limit,
            BudgetPolicy::WallClock { limit } => self.start.elapsed() >= *limit,
        }
    }

    /// The absolute deadline when the policy is wall-clock based,
    /// `None` otherwise. Unlike the budget itself this is plain `Sync`
    /// data, so parallel stages can re-check it mid-flight — the
    /// deterministic policies return `None` and stay unaffected.
    pub fn deadline(&self) -> Option<Instant> {
        match &self.policy {
            BudgetPolicy::WallClock { limit } => Some(self.start + *limit),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_pins_the_reference_vectors() {
        // Classic FNV-1a test vectors: the empty input hashes to the
        // offset basis, and "a"/"foobar" match the published values.
        assert_eq!(fnv64(std::iter::empty()), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64("a".bytes()), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64("foobar".bytes()), 0x85944171f73967e8);
    }

    #[test]
    fn fnv64_fold_pins_the_serve_and_knowledge_recipes() {
        // The serve layer's per-kernel seed: single-shot FNV-1a over the
        // canonical text (pinned against the pre-dedup inline copy).
        let serve_reference = |s: &str| {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in s.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        };
        let text = "for (i = 0; i <= N - 1; i++) A[i] = B[i] + 1.0;\n";
        assert_eq!(fnv64(text.bytes()), serve_reference(text));
        // The knowledge base's state-chained insertion fold (pinned
        // against the pre-dedup inline copy in `looprag-retrieval`).
        let kb_reference = |state: u64, id: usize, t: &str| {
            let mut h = state ^ 0xcbf2_9ce4_8422_2325u64;
            for b in id
                .to_string()
                .bytes()
                .chain([b':'])
                .chain(t.bytes())
                .chain([0u8])
            {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        };
        let mut want = 0u64;
        let mut got = 0u64;
        for (id, t) in [(0usize, "alpha"), (12, "b"), (1, "2:b")] {
            want = kb_reference(want, id, t);
            got = fnv64_fold(
                got,
                id.to_string()
                    .bytes()
                    .chain([b':'])
                    .chain(t.bytes())
                    .chain([0u8]),
            );
            assert_eq!(got, want, "fold diverged at id {id}");
        }
        // Chaining is not plain concatenation: (1, "ab") != (12, "b").
        let a = fnv64_fold(0, b"1:ab\0".iter().copied());
        let b = fnv64_fold(0, b"12:b\0".iter().copied());
        assert_ne!(a, b);
    }

    #[test]
    fn par_map_preserves_submission_order() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map(threads, &items, |i, x| {
                assert_eq!(i, *x, "index must match the item's position");
                x * 3 + 1
            });
            assert_eq!(got, expect, "order broke at {threads} threads");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(8, &[41u32], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..32).collect();
        let r = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, x| {
                if *x == 17 {
                    panic!("boom");
                }
                *x
            })
        });
        assert!(r.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn resolve_explicit_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn parse_threads_env_accepts_positive_integers() {
        assert_eq!(parse_threads_env("1"), Ok(1));
        assert_eq!(parse_threads_env("8"), Ok(8));
        assert_eq!(parse_threads_env(" 12 "), Ok(12), "whitespace is trimmed");
    }

    #[test]
    fn parse_threads_env_rejects_zero_and_garbage() {
        for bad in ["0", "", "fuor", "-2", "3.5", "2 threads"] {
            let err = parse_threads_env(bad)
                .expect_err(&format!("{bad:?} must be rejected, not silently ignored"));
            assert!(
                err.contains(THREADS_ENV),
                "error must name the variable: {err}"
            );
        }
        assert!(
            parse_threads_env("0").unwrap_err().contains("unset"),
            "zero's error must point at unsetting the variable"
        );
    }

    #[test]
    fn virtual_budget_exhausts_at_limit() {
        let b = Budget::new(BudgetPolicy::VirtualCost { limit: 3 });
        assert!(!b.exhausted());
        b.charge(2);
        assert!(!b.exhausted());
        b.charge(1);
        assert!(b.exhausted());
        assert_eq!(b.spent(), 3);
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::new(BudgetPolicy::Unlimited);
        b.charge(u64::MAX);
        b.charge(u64::MAX); // saturates instead of wrapping
        assert!(!b.exhausted());
    }

    #[test]
    fn wall_clock_budget_uses_the_clock() {
        let b = Budget::new(BudgetPolicy::WallClock {
            limit: Duration::from_secs(3600),
        });
        b.charge(1_000_000);
        assert!(!b.exhausted(), "virtual charges must not tick the clock");
        assert!(b.deadline().is_some());
        let zero = Budget::new(BudgetPolicy::WallClock {
            limit: Duration::ZERO,
        });
        assert!(zero.exhausted());
        assert!(Budget::new(BudgetPolicy::Unlimited).deadline().is_none());
        assert!(Budget::new(BudgetPolicy::default_virtual())
            .deadline()
            .is_none());
    }

    #[test]
    fn pool_runs_workers_concurrently() {
        // A wall-clock-free concurrency proof: four workers each take
        // one item and block until all four have arrived. A pool that
        // accidentally serialized its work items (e.g. a lock around
        // the closure) would leave the first worker waiting alone until
        // the timeout, failing the assertion without hanging the suite.
        use std::sync::Condvar;
        const N: usize = 4;
        let arrivals = Mutex::new(0usize);
        let cv = Condvar::new();
        let items = [(); N];
        let results = par_map(N, &items, |_, _| {
            let mut arrived = arrivals.lock().unwrap();
            *arrived += 1;
            cv.notify_all();
            let (guard, timeout) = cv
                .wait_timeout_while(arrived, Duration::from_secs(10), |a| *a < N)
                .unwrap();
            !timeout.timed_out() && *guard >= N
        });
        assert!(
            results.iter().all(|ok| *ok),
            "pool serialized: the {N} workers never overlapped"
        );
    }
}
