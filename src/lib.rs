//! # looprag
//!
//! Umbrella crate for the LOOPRAG reproduction: re-exports every
//! component crate plus the most commonly used items at the top level.
//!
//! * [`looprag_ir`] — SCoP IR, C-subset parser/printer, validation
//! * [`looprag_dependence`] — dependence analysis and legality queries
//! * [`looprag_transform`] — loop transformations and recipes
//! * [`looprag_exec`] — reference interpreter
//! * [`looprag_machine`] — cache/vector/parallel performance model
//! * [`looprag_polyopt`] — PLuTo-style auto-optimizer
//! * [`looprag_synth`] — parameter-driven dataset synthesis
//! * [`looprag_retrieval`] — BM25 + loop-aware LAScore retrieval
//! * [`looprag_runtime`] — deterministic worker pool and budgets
//! * [`looprag_llm`] — prompts and the simulated LLM
//! * [`looprag_eqcheck`] — mutation/coverage/differential testing
//! * [`looprag_baselines`] — baseline compiler models
//! * [`looprag_suites`] — PolyBench/TSVC/LORE kernels
//! * [`looprag_search`] — legality-guided beam search over recipes
//! * [`looprag_rank`] — learned step reranker trained from mined feedback
//! * [`looprag_core`] — the end-to-end pipeline
//! * [`looprag_serve`] — optimization-as-a-service with a verified-winner memo
//! * [`looprag_trace`] — deterministic tracing and the metrics registry
//!
//! ```
//! use looprag::prelude::*;
//! let p = compile(
//!     "param N = 16;\narray A[N];\nout A;\n#pragma scop\n\
//!      for (i = 0; i <= N - 1; i++) A[i] = A[i] * 2.0;\n#pragma endscop\n",
//!     "scale",
//! )?;
//! let tiled = tile_band(&p, &[0], 1, 8)?;
//! assert!(semantics_preserving(&p, &tiled, &OracleConfig::default()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use looprag_baselines;
pub use looprag_core;
pub use looprag_dependence;
pub use looprag_eqcheck;
pub use looprag_exec;
pub use looprag_ir;
pub use looprag_llm;
pub use looprag_machine;
pub use looprag_polyopt;
pub use looprag_rank;
pub use looprag_retrieval;
pub use looprag_runtime;
pub use looprag_search;
pub use looprag_serve;
pub use looprag_suites;
pub use looprag_synth;
pub use looprag_trace;
pub use looprag_transform;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use looprag_core::{LoopRag, LoopRagConfig, OptimizationOutcome};
    pub use looprag_dependence::{analyze, DepKind, DependenceSet};
    pub use looprag_exec::{run, ExecConfig};
    pub use looprag_ir::{compile, parse_program, print_program, Program};
    pub use looprag_llm::{LanguageModel, LlmProfile, Prompt, SimLlm};
    pub use looprag_machine::{estimate_cost, MachineConfig};
    pub use looprag_polyopt::{optimize, PolyOptions};
    pub use looprag_retrieval::{KnowledgeBase, RetrievalMode, Retriever};
    pub use looprag_search::{search, SearchConfig, SearchResult};
    pub use looprag_synth::{build_dataset, SynthConfig};
    pub use looprag_transform::{semantics_preserving, tile_band, OracleConfig, Recipe, Step};
}
