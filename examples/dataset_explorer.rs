//! Explores a synthesized demonstration dataset: Figure-9-style property
//! distributions, the transformation families the optimizer triggered,
//! and a printed demonstration pair — the raw material of every prompt.
//!
//! ```text
//! cargo run --release --example dataset_explorer
//! ```

use looprag::looprag_synth::{
    build_dataset, cluster_histogram, spread, GeneratorKind, SynthConfig, PROPERTY_NAMES,
};

fn main() {
    for kind in [GeneratorKind::ParameterDriven, GeneratorKind::ColaGen] {
        let dataset = build_dataset(&SynthConfig {
            count: 100,
            generator: kind,
            ..Default::default()
        });
        println!("\n==== {kind:?}: {} examples ====", dataset.examples.len());

        let stats: Vec<_> = dataset.examples.iter().map(|e| e.stats.clone()).collect();
        let hist = cluster_histogram(&stats);
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6}   spread",
            "property", "A", "B", "C", "D"
        );
        for (i, name) in PROPERTY_NAMES.iter().enumerate() {
            println!(
                "{name:<12} {:>6} {:>6} {:>6} {:>6}   {:.2}",
                hist[i][0],
                hist[i][1],
                hist[i][2],
                hist[i][3],
                spread(&hist[i])
            );
        }

        let mut families: Vec<String> = dataset
            .examples
            .iter()
            .flat_map(|e| e.families.iter().cloned())
            .collect();
        families.sort();
        families.dedup();
        println!("families triggered: {}", families.join(", "));

        if let Some(e) = dataset
            .examples
            .iter()
            .find(|e| e.families.len() >= 2)
            .or_else(|| dataset.examples.first())
        {
            println!("\n--- sample example (id {}) ---\n{}", e.id, e.source);
            println!("--- its optimized version ---\n{}", e.optimized);
            println!("recipe: {}", e.recipe.join("; "));
        }
    }
}
