//! Tracing walkthrough: record the logical event stream of an
//! optimization run, aggregate it into a summary, diff two arms of the
//! pipeline against each other, and export a Chrome `trace_event` file
//! (load it at `chrome://tracing` or in Perfetto).
//!
//! ```text
//! cargo run --release --example trace
//! ```

use looprag::looprag_core::{LoopRag, LoopRagConfig};
use looprag::looprag_llm::LlmProfile;
use looprag::looprag_search::SearchConfig;
use looprag::looprag_synth::{build_dataset, SynthConfig};
use looprag::looprag_trace::{export, Recorder, TraceConfig, TraceSummary};

fn traced_run(search: bool) -> Vec<looprag::looprag_trace::Event> {
    let dataset = build_dataset(&SynthConfig {
        count: 12,
        ..Default::default()
    });
    let mut cfg = LoopRagConfig::new(LlmProfile::deepseek());
    cfg.threads = 1;
    if search {
        cfg.search = Some(SearchConfig {
            beam: 2,
            depth: 2,
            threads: 1,
            ..SearchConfig::default()
        });
    }
    let rag = LoopRag::new(cfg, dataset);
    let gemm = looprag::looprag_suites::find("gemm")
        .expect("gemm is in the PolyBench suite")
        .program();

    // The recorder rides along as `Option<&Recorder>`; production
    // callers pass `None` and pay nothing.
    let rec = Recorder::new(TraceConfig::default());
    let outcome = rag.optimize_traced("gemm", &gemm, 1, Some(&rec));
    println!(
        "{} arm: passed={} speedup={:.2}x",
        if search { "hybrid" } else { "llm-only" },
        outcome.passed,
        outcome.speedup
    );
    rec.finish()
}

fn main() {
    // 1. Trace the hybrid arm (LLM + beam search). The event stream is
    //    stamped with logical sequence numbers — rerun this example at
    //    any LOOPRAG_THREADS and the stream is bit-identical.
    let hybrid = traced_run(true);
    println!("hybrid arm recorded {} logical events", hybrid.len());

    // 2. Aggregate into per-name totals.
    let hybrid_summary = TraceSummary::from_events(&hybrid);
    println!("\n--- hybrid span counts ---");
    for (name, n) in &hybrid_summary.spans {
        println!("{n:>4}  {name}");
    }

    // 3. Trace the LLM-only arm and diff the two summaries: the search
    //    spans disappear, the generation/testing stages stay.
    let llm_only = traced_run(false);
    let llm_summary = TraceSummary::from_events(&llm_only);
    println!("\n--- hybrid -> llm-only diff ---");
    print!("{}", hybrid_summary.render_diff(&llm_summary));

    // 4. Export. The canonical JSON round-trips byte-stably; the Chrome
    //    form loads in chrome://tracing / Perfetto with the logical
    //    clock as the timeline and wall durations attached as args.
    let canonical = export::to_canonical_json(&hybrid);
    let reparsed = export::from_canonical_json(&canonical).expect("canonical parse");
    // Byte-stable: re-exporting the parsed stream reproduces the
    // canonical text exactly (wall time lives outside it by design).
    assert_eq!(
        export::to_canonical_json(&reparsed),
        canonical,
        "canonical export round-trips byte-stably"
    );
    let path = std::env::temp_dir().join("looprag_trace_gemm.json");
    std::fs::write(&path, export::to_chrome_json(&hybrid)).expect("write chrome trace");
    println!("\nwrote Chrome trace_event JSON to {}", path.display());
}
