//! Quickstart: synthesize a demonstration dataset, build the LOOPRAG
//! optimizer, and optimize a gemm kernel end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use looprag::looprag_core::{LoopRag, LoopRagConfig};
use looprag::looprag_ir::print_program;
use looprag::looprag_llm::LlmProfile;
use looprag::looprag_synth::{build_dataset, SynthConfig};

fn main() {
    // 1. A demonstration dataset: synthesized example codes, optimized by
    //    the polyhedral optimizer, stored with their loop properties.
    let dataset = build_dataset(&SynthConfig {
        count: 60,
        ..Default::default()
    });
    println!("dataset: {} demonstration pairs", dataset.examples.len());

    // 2. The optimizer: retrieval + feedback-based iterative generation
    //    over a (simulated) LLM.
    let rag = LoopRag::new(LoopRagConfig::new(LlmProfile::deepseek()), dataset);

    // 3. A target kernel.
    let gemm = looprag::looprag_suites::find("gemm")
        .expect("gemm is in the PolyBench suite")
        .program();
    println!("--- target ---\n{}", print_program(&gemm));

    // 4. Optimize.
    let outcome = rag.optimize("gemm", &gemm);
    println!(
        "passed: {} | estimated speedup: {:.2}x | candidates tried: {}",
        outcome.passed,
        outcome.speedup,
        outcome.candidates.len()
    );
    if let Some(best) = &outcome.best {
        println!("--- best optimized code ---\n{}", print_program(best));
    }
}
