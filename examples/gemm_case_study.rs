//! Appendix G.2: why LOOPRAG outperforms base LLMs on `gemm`.
//!
//! The base model typically introduces a scalar temporary (the paper's
//! Listing 7); the full pipeline learns tiling and parallelization from
//! demonstrations and verifies every candidate (Listing 8).
//!
//! ```text
//! cargo run --release --example gemm_case_study
//! ```

use looprag::looprag_core::{LoopRag, LoopRagConfig};
use looprag::looprag_ir::print_program;
use looprag::looprag_llm::LlmProfile;
use looprag::looprag_synth::{build_dataset, SynthConfig};

fn main() {
    let gemm = looprag::looprag_suites::find("gemm").unwrap().program();
    println!(
        "--- original gemm (paper Listing 6) ---\n{}",
        print_program(&gemm)
    );

    let dataset = build_dataset(&SynthConfig {
        count: 80,
        ..Default::default()
    });

    // Base DeepSeek: instruction prompting only.
    let mut base_cfg = LoopRagConfig::new(LlmProfile::deepseek());
    base_cfg.demos = 0;
    base_cfg.single_shot = true;
    let base = LoopRag::new(base_cfg, looprag::looprag_synth::Dataset::default());
    let base_outcome = base.optimize("gemm", &gemm);
    println!(
        "base DeepSeek: pass={} speedup={:.2}x",
        base_outcome.passed, base_outcome.speedup
    );
    if let Some(p) = &base_outcome.best {
        println!(
            "--- base model's best (cf. paper Listing 7) ---\n{}",
            print_program(p)
        );
    }

    // Full LOOPRAG.
    let rag = LoopRag::new(LoopRagConfig::new(LlmProfile::deepseek()), dataset);
    let outcome = rag.optimize("gemm", &gemm);
    println!(
        "LOOPRAG DeepSeek: pass={} speedup={:.2}x",
        outcome.passed, outcome.speedup
    );
    if let Some(p) = &outcome.best {
        println!(
            "--- LOOPRAG's best (cf. paper Listing 8) ---\n{}",
            print_program(p)
        );
    }
    if base_outcome.speedup > 0.0 {
        println!(
            "improvement over base model: {:.2}x",
            outcome.speedup / base_outcome.speedup
        );
    }
}
