//! The paper's running example (§2.2, §6.5, Appendix G.1): `syrk`,
//! and how retrieved demonstrations teach the model the
//! tiling + fusion + interchange composition of Listing 1.
//!
//! The two example codes below are transcriptions of the paper's
//! Listing 2 (`example_1`) and Listing 3 (`examples_2`); their optimized
//! versions come from the polyhedral optimizer, exactly as dataset
//! entries do.
//!
//! ```text
//! cargo run --release --example syrk_case_study
//! ```

use looprag::looprag_ir::{compile, print_program};
use looprag::looprag_llm::{Demonstration, LanguageModel, LlmProfile, Prompt, SimLlm};
use looprag::looprag_machine::{estimate_cost, MachineConfig};
use looprag::looprag_polyopt::{optimize, PolyOptions};
use looprag::looprag_transform::{semantics_preserving, OracleConfig};

/// Paper Listing 2, in the C subset.
const EXAMPLE_1: &str = "\
param N = 128;
param M = 128;
array A[N + 2][N + 2];
array C[N + 2][N + 2];
out A;
#pragma scop
for (i = 2; i <= N; i++) {
  for (j = 0; j <= M - 1; j++) {
    A[i - 1][i] = A[i - 2][i] + C[i][j] * 6.0;
  }
  for (k = 0; k <= M - 1; k++) {
    A[k + 1][k] = A[i][k] - C[k + 1][i] * 4.0;
  }
}
#pragma endscop
";

/// Paper Listing 3, in the C subset.
const EXAMPLE_2: &str = "\
param L = 128;
array A[L + 1][L + 1];
array C[L + 1];
out A;
#pragma scop
for (i = 0; i <= L; i++) {
  for (j = 0; j <= i; j++) {
    A[i][j] = A[i][j] + 6.0;
  }
  for (k = 0; k <= L; k++) {
    A[i][k] = -(A[k][i]) + C[k] - 2.0;
  }
}
#pragma endscop
";

fn main() {
    let syrk = looprag::looprag_suites::find("syrk").unwrap().program();
    println!(
        "--- target: syrk (paper Figure 2) ---\n{}",
        print_program(&syrk)
    );

    // Optimize the example codes with the demonstration source, as the
    // dataset builder does.
    let mut demos = Vec::new();
    for (name, src) in [("example_1", EXAMPLE_1), ("examples_2", EXAMPLE_2)] {
        let p = compile(src, name).expect("paper example compiles");
        let r = optimize(&p, &PolyOptions::default());
        println!(
            "demonstration {name}: recipe = {}",
            if r.recipe.steps.is_empty() {
                "(identity)".to_string()
            } else {
                r.recipe.to_string()
            }
        );
        demos.push(Demonstration {
            source: print_program(&p),
            optimized: print_program(&r.program),
        });
    }

    // Base GPT-4 vs GPT-4-with-demonstrations, as in §2.2.
    let machine = MachineConfig::gcc();
    let base_cost = estimate_cost(&syrk, &machine).unwrap();
    let oracle = OracleConfig::default();

    let mut best_base = 0.0f64;
    let mut best_demo = 0.0f64;
    let mut best_demo_text = String::new();
    for seed in 0..7u64 {
        let mut base_model = SimLlm::new(LlmProfile::gpt4(), seed);
        let out = base_model.generate(&Prompt::base(print_program(&syrk)));
        if let Ok(cand) = compile(&out, "cand") {
            if semantics_preserving(&syrk, &cand, &oracle) {
                if let Ok(c) = estimate_cost(&cand, &machine) {
                    best_base = best_base.max(base_cost.speedup_of(&c));
                }
            }
        }
        let mut demo_model = SimLlm::new(LlmProfile::gpt4(), seed);
        let out = demo_model.generate(&Prompt::with_demonstrations(
            print_program(&syrk),
            demos.clone(),
        ));
        if let Ok(cand) = compile(&out, "cand") {
            if semantics_preserving(&syrk, &cand, &oracle) {
                if let Ok(c) = estimate_cost(&cand, &machine) {
                    let s = base_cost.speedup_of(&c);
                    if s > best_demo {
                        best_demo = s;
                        best_demo_text = print_program(&cand);
                    }
                }
            }
        }
    }
    println!("\nbest GPT-4 speedup without demonstrations: {best_base:.2}x");
    println!("best GPT-4 speedup with demonstrations:    {best_demo:.2}x");
    if !best_demo_text.is_empty() {
        println!("\n--- best demonstrated syrk (cf. paper Listing 1) ---\n{best_demo_text}");
    }
    println!(
        "demonstration-driven improvement: {:.2}x",
        if best_base > 0.0 {
            best_demo / best_base
        } else {
            best_demo
        }
    );
}
