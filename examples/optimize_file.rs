//! A small command-line optimizer: reads a kernel in the C subset from a
//! file (or optimizes the built-in `jacobi-2d` when no path is given),
//! runs the full pipeline and prints the best optimized code.
//!
//! ```text
//! cargo run --release --example optimize_file -- path/to/kernel.c
//! ```

use looprag::looprag_core::{LoopRag, LoopRagConfig};
use looprag::looprag_ir::{compile, print_program};
use looprag::looprag_llm::LlmProfile;
use looprag::looprag_synth::{build_dataset, SynthConfig};

fn main() {
    let arg = std::env::args().nth(1);
    let (name, source) = match &arg {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            (path.clone(), text)
        }
        None => {
            let b = looprag::looprag_suites::find("jacobi-2d").unwrap();
            (b.name.clone(), b.source.clone())
        }
    };

    let program = match compile(&source, &name) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compilation failed:\n{e}");
            std::process::exit(1);
        }
    };

    eprintln!("building demonstration dataset...");
    let dataset = build_dataset(&SynthConfig {
        count: 80,
        ..Default::default()
    });
    let rag = LoopRag::new(LoopRagConfig::new(LlmProfile::deepseek()), dataset);

    eprintln!("optimizing {name}...");
    let outcome = rag.optimize(&name, &program);
    if let Some(best) = &outcome.best {
        println!("// estimated speedup: {:.2}x", outcome.speedup);
        println!("{}", print_program(best));
    } else {
        println!("// no verified optimization found; original kept");
        println!("{}", print_program(&program));
    }
}
