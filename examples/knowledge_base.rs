//! Knowledge-base tour: build an index over a synthesized dataset,
//! query it, insert a freshly mined example without rebuilding, and
//! query again — the insert-then-query loop that powers feedback
//! indexing.
//!
//! ```text
//! cargo run --release --example knowledge_base
//! ```

use looprag::looprag_ir::Program;
use looprag::looprag_retrieval::{KnowledgeBase, RetrievalMode};
use looprag::looprag_synth::{build_dataset, SynthConfig};

fn main() {
    // 1. Index a synthesized demonstration dataset.
    let dataset = build_dataset(&SynthConfig {
        count: 40,
        ..Default::default()
    });
    let programs: Vec<(usize, Program)> = dataset
        .examples
        .iter()
        .map(|e| (e.id, e.program()))
        .collect();
    let mut kb = KnowledgeBase::build(programs.iter().map(|(i, p)| (*i, p)));
    println!("knowledge base: {} examples indexed", kb.len());

    // 2. Query for a gemm-shaped target.
    let gemm = looprag::looprag_suites::find("gemm")
        .expect("gemm is in the PolyBench suite")
        .program();
    let before = kb.query(&gemm, RetrievalMode::LoopAware, 3);
    println!("top-3 before insert:");
    for (id, score) in &before {
        println!("  example {id:>3}  LAScore {score:+.3}");
    }

    // 3. Insert the target itself, as the feedback loop would after a
    //    verified win — an append, not a rebuild.
    let mined_id = dataset.next_id();
    kb.insert(mined_id, &gemm);
    println!("inserted mined example {mined_id} ({} total)", kb.len());

    // 4. The freshly inserted example is immediately retrievable — and
    //    being identical to the target, it ranks first.
    let after = kb.query(&gemm, RetrievalMode::LoopAware, 3);
    println!("top-3 after insert:");
    for (id, score) in &after {
        println!("  example {id:>3}  LAScore {score:+.3}");
    }
    assert_eq!(after[0].0, mined_id, "the mined twin must rank first");
}
