#!/usr/bin/env bash
# Forbid stray println!/eprintln!/dbg! in library crates.
#
# All diagnostics in library code must flow through the looprag-trace
# recorder (for per-run events) or the metrics registry (for process
# counters) so runs stay deterministic and machine-readable. Direct
# printing is reserved for binaries (crates/*/src/bin/) and the
# explicitly allowlisted harness/progress modules below.
#
# Usage: ci/lint_no_print.sh   (from the repo root; exits non-zero on
# violations and prints each offending line)
set -u

# Library files that legitimately print, with why:
#   crates/runtime/src/lib.rs      worker-panic propagation notice
#   crates/bench/src/experiments.rs  experiment tables (the product)
#   crates/bench/src/harness.rs    campaign progress lines
#   crates/bench/src/serve.rs      serve-arm progress lines
#   crates/bench/src/observe.rs    trace-export confirmation line
ALLOW='^crates/(runtime/src/lib\.rs|bench/src/(experiments|harness|serve|observe)\.rs):'

violations=$(grep -rnE '\b(println!|eprintln!|dbg!)' crates/*/src --include='*.rs' \
  | grep -v '/src/bin/' \
  | grep -vE '^[^:]*:[0-9]+:\s*//' \
  | grep -vE "$ALLOW")

if [ -n "$violations" ]; then
  echo "stray print/debug macros in library code (route through looprag-trace instead):"
  echo "$violations"
  exit 1
fi
echo "lint_no_print: OK"
