//! Offline shim for the `criterion` surface this workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a warm-up pass, then
//! `sample_size` timed samples whose median ns/iter is printed — with
//! no statistics, plots, or baselines. Enough to spot order-of-magnitude
//! regressions and to keep `cargo bench` compiling offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, configured per group.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "{id:<32} {:>12.1} ns/iter ({} samples)",
            median.as_nanos() as f64,
            b.samples.len()
        );
        self
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim runs one
/// input per measurement regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl Bencher {
    /// Measures `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a rough scale estimate to pick iteration counts.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Measures `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group; supports both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
