//! Sampling from explicit value lists (`prop::sample`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Picks uniformly from `items`.
///
/// # Panics
///
/// Panics when `items` is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "prop::sample::select on empty list");
    Select { items }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.items[rng.gen_range(0..self.items.len())].clone()
    }
}
