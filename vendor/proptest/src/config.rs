//! Run configuration for [`crate::proptest!`] blocks.

/// How many cases each property runs, plus room for future knobs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256 because the shim
    /// does no shrinking and several suites run whole-program
    /// interpreters per case.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
