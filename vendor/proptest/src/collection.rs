//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
