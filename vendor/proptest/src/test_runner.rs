//! Case execution support used by the [`crate::proptest!`] expansion.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic seed for one case: FNV-1a over the test path mixed
/// with the case index, so each test gets an independent stream and a
/// failure message's seed pinpoints the exact inputs.
#[must_use]
pub fn case_seed(test_path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= u64::from(case);
    h.wrapping_mul(0x0000_0100_0000_01B3)
}

/// The RNG driving one case.
#[must_use]
pub fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
