//! Offline shim for the `proptest` surface this workspace uses: the
//! [`proptest!`] macro, range / select / collection / string-pattern
//! strategies, `prop_map`, tuple composition, and the `prop_assert*`
//! macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failure message reports the case
//! index and the deterministic per-case seed instead, which is enough
//! to reproduce (case seeds do not depend on which cases passed).
//! Every run is fully deterministic: there is no persistence file and
//! no environment-dependent seeding.

#![forbid(unsafe_code)]

pub mod collection;
pub mod config;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each `fn name(arg in strategy, ...) { body }` item as a
/// `#[test]` over `ProptestConfig::cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::config::ProptestConfig = $cfg;
            let strategies = ( $( $strat, )+ );
            for case in 0..cfg.cases {
                let seed = $crate::test_runner::case_seed(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                    case,
                );
                let mut rng = $crate::test_runner::rng_for(seed);
                let ( $($arg,)+ ) =
                    $crate::strategy::Strategy::sample(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1, cfg.cases, seed, e,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::config::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}
