//! String generation from a small character-class pattern grammar.
//!
//! Real proptest accepts arbitrary regexes for `&str` strategies. The
//! shim supports the concatenation of:
//!
//! * `[set]{m,n}` / `[set]{n}` / `[set]` — a char class repeated; the
//!   set may contain `a-z` style ranges and literal characters
//!   (including space),
//! * literal characters.
//!
//! Anything using unsupported regex syntax (`|`, groups, `\d`, …)
//! panics with a message naming the pattern, so a future test that
//! outgrows the grammar fails loudly rather than silently mis-sampling.

use rand::rngs::StdRng;
use rand::Rng;

/// Draws one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let set = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                let (lo, hi) = if chars.get(i) == Some(&'{') {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i + 1)
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad repeat lower bound"),
                            b.trim().parse().expect("bad repeat upper bound"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("bad repeat count");
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                let len = rng.gen_range(lo..=hi);
                for _ in 0..len {
                    out.push(set[rng.gen_range(0..set.len())]);
                }
            }
            '|' | '(' | ')' | '*' | '+' | '?' | '.' | '\\' => {
                panic!(
                    "proptest shim: unsupported regex syntax {:?} in pattern {pattern:?} \
                     (the shim only handles `[class]{{m,n}}` concatenations)",
                    chars[i]
                );
            }
            c => {
                out.push(c);
                i += 1;
                continue;
            }
        }
    }
    out
}

/// Expands a char class body (`a-z0-9_ `) into its member characters.
fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty char class in pattern {pattern:?}");
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(char::from_u32(c).unwrap());
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::sample_pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_with_repeat_respects_alphabet_and_length() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = sample_pattern("[a-z ]{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample_pattern("abc", &mut rng), "abc");
        let s = sample_pattern("x[01]{3}y", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x') && s.ends_with('y'));
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn alternation_is_rejected_loudly() {
        let mut rng = StdRng::seed_from_u64(3);
        sample_pattern("a|b", &mut rng);
    }
}
