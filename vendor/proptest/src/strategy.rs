//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::string::sample_pattern;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for drawing random values of one type.
///
/// Unlike real proptest there is no value tree: sampling is direct and
/// shrinking is unsupported.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, panicking after too many
    /// consecutive rejections (mirrors proptest's rejection limit).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform values of any [`rand::Standard`] type (integers over their
/// full domain, `f64` in `[0, 1)`, `bool` fair).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// `&str` strategies are character-class patterns; see [`crate::string`]
/// for the supported grammar.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}
