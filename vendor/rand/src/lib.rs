//! Offline shim exposing the subset of the `rand` 0.8 API this
//! workspace uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The container this workspace builds in has no registry access, so
//! the real crate cannot be fetched; this shim keeps call sites
//! source-compatible. `StdRng` is xoshiro256++ seeded via SplitMix64 —
//! deterministic across platforms, which the dataset-synthesis and
//! pipeline determinism tests rely on. It is **not** a CSPRNG.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (the shim's stand-in for sampling
/// from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching rand's contract.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform draw from `[0, span)` via Lemire-style widening multiply
/// (negligible bias is acceptable for this shim's workloads, but the
/// multiply keeps low-bit artifacts out).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic for a given seed on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_inclusive_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-3..=3);
            seen[(v + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
