//! Offline shim for serde's derive macros, targeting the `serde` shim's
//! `Value`-based traits.
//!
//! Written against `proc_macro` alone (no `syn`/`quote` — the build
//! environment has no registry access), so it supports exactly what the
//! workspace derives on: non-generic structs with named fields. Any
//! other shape produces a `compile_error!` naming the limitation.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the serde shim's `Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives the serde shim's `Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

enum Trait {
    Serialize,
    Deserialize,
}

fn error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});").parse().unwrap()
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let (name, fields) = match parse_struct(input) {
        Ok(ok) => ok,
        Err(msg) => return error(&msg),
    };
    let body = match which {
        Trait::Serialize => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Trait::Deserialize => {
            let reads: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             v.get({f:?}).ok_or_else(|| \
                                 ::serde::DeError::missing_field({f:?}))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if !::std::matches!(v, ::serde::Value::Object(_)) {{\n\
                             return ::std::result::Result::Err(\
                                 ::serde::DeError::custom(\"expected object\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {reads} }})\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().unwrap()
}

/// Extracts `(struct_name, field_names)` from a derive input stream.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut tokens = input.into_iter().peekable();
    // Item prefix: attributes and visibility, then `struct Name { ... }`.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("serde shim derive: expected struct name".into()),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("serde shim derive supports only structs with named fields \
                     (enums need a manual impl against the shim's Value traits)"
                    .into());
            }
            _ => {} // visibility etc.
        }
    }
    let name = name.ok_or("serde shim derive: no `struct` keyword found")?;
    let group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "serde shim derive: struct {name} is generic, which the shim \
                 does not support"
            ));
        }
        _ => {
            return Err(format!(
                "serde shim derive: struct {name} must have named fields"
            ));
        }
    };

    // Fields: comma-separated `attrs vis name: type` chunks.
    let mut fields = Vec::new();
    let mut expect_name = true;
    let mut depth_guard = 0usize; // inside a type: angle brackets
    let mut inner = group.stream().into_iter().peekable();
    while let Some(tt) = inner.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' && expect_name => {
                inner.next(); // attribute body
            }
            TokenTree::Ident(id) if expect_name => {
                let s = id.to_string();
                if s == "pub" {
                    // Visibility, possibly `pub(crate)`.
                    if let Some(TokenTree::Group(_)) = inner.peek() {
                        inner.next();
                    }
                } else {
                    fields.push(s);
                    expect_name = false;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth_guard += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth_guard > 0 => {
                depth_guard -= 1;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth_guard == 0 => {
                expect_name = true;
            }
            _ => {}
        }
    }
    Ok((name, fields))
}
