//! Offline shim for the `serde_json` surface this workspace uses:
//! [`to_string`], [`from_str`] and [`Error`], implemented over the
//! `serde` shim's `Value` tree with a hand-rolled JSON writer/parser.
//!
//! Supports the full JSON grammar (objects, arrays, strings with
//! escapes incl. `\uXXXX`, numbers, booleans, null); numbers without
//! fraction/exponent parse as integers so integer fields round-trip
//! exactly.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Returns an error when the tree contains a non-finite float, which
/// JSON cannot represent.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text and reconstructs a `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, or a shape that
/// does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer --------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} in JSON")));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep floats floats across a round-trip.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number {text:?}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("bad number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v: Vec<i64> = from_str("[1, -2, 3]").unwrap();
        assert_eq!(v, vec![1, -2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,-2,3]");
        let s: String = from_str("\"a\\nb \\u0041\"").unwrap();
        assert_eq!(s, "a\nb A");
    }

    #[test]
    fn strings_with_specials_round_trip() {
        let orig = "for (i = 0; i <= N - 1; i++) {\n\t\"x\" \\ \u{1F600}\u{7}\n}".to_string();
        let json = to_string(&orig).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(orig, back);
    }

    #[test]
    fn floats_stay_floats() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        let back: f64 = from_str(&json).unwrap();
        assert!((back - 2.0).abs() < 1e-12);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Vec<i64>>("[1, 2").is_err());
        assert!(from_str::<Vec<i64>>("[1] x").is_err());
        assert!(from_str::<String>("[1]").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
