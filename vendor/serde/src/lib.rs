//! Offline shim for the `serde` surface this workspace uses:
//! `#[derive(Serialize, Deserialize)]` on plain structs with named
//! fields, consumed by the `serde_json` shim.
//!
//! Unlike real serde's visitor architecture, this shim round-trips
//! through an owned [`Value`] tree — simpler, and fully adequate for
//! the dataset records this workspace persists. The derive macros live
//! in the `serde_derive` shim and target these traits.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (JSON numbers without fraction/exponent).
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Builds an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A "field missing" error.
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Converts a value into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a document tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a document tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] on shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!("integer {i} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Serialize for u64 {
    #[allow(clippy::cast_possible_wrap)]
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => u64::try_from(*i)
                .map_err(|_| DeError::custom(format!("integer {i} out of range for u64"))),
            _ => Err(DeError::custom("expected integer for u64")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(f64::from(*self)) }
        }
        impl Deserialize for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(DeError::custom("expected number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// Identity impls so callers can parse JSON into a raw `Value` tree and
// walk it by hand (e.g. versioned snapshot documents whose shape is
// checked before any typed field is extracted).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
